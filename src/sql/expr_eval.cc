#include "sql/expr_eval.h"

#include <cctype>
#include <cmath>
#include <optional>

#include "common/strings.h"

namespace scoop {

namespace {

// Numeric view of a value for arithmetic; nullopt when not interpretable.
std::optional<double> NumericOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return static_cast<double>(v.AsInt64());
    case ValueType::kDouble:
      return v.AsDoubleExact();
    case ValueType::kString: {
      auto parsed = ParseDouble(v.AsString());
      if (parsed.ok()) return *parsed;
      return std::nullopt;
    }
    case ValueType::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

Value EvalArith(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Integer arithmetic stays integral except for division.
  if (op != BinaryOp::kDiv && lhs.type() == ValueType::kInt64 &&
      rhs.type() == ValueType::kInt64) {
    int64_t a = lhs.AsInt64();
    int64_t b = rhs.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      default:
        break;
    }
  }
  auto a = NumericOf(lhs);
  auto b = NumericOf(rhs);
  if (!a || !b) return Value::Null();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(*a + *b);
    case BinaryOp::kSub:
      return Value(*a - *b);
    case BinaryOp::kMul:
      return Value(*a * *b);
    case BinaryOp::kDiv:
      if (*b == 0.0) return Value::Null();
      return Value(*a / *b);
    default:
      return Value::Null();
  }
}

Value EvalComparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value(static_cast<int64_t>(0));
  int cmp = lhs.Compare(rhs);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = cmp == 0;
      break;
    case BinaryOp::kNe:
      result = cmp != 0;
      break;
    case BinaryOp::kLt:
      result = cmp < 0;
      break;
    case BinaryOp::kLe:
      result = cmp <= 0;
      break;
    case BinaryOp::kGt:
      result = cmp > 0;
      break;
    case BinaryOp::kGe:
      result = cmp >= 0;
      break;
    default:
      break;
  }
  return Value(static_cast<int64_t>(result ? 1 : 0));
}

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDoubleExact() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

}  // namespace

Status BindExpr(Expr* expr, const Schema& schema) {
  switch (expr->kind) {
    case Expr::Kind::kColumn: {
      int idx = schema.IndexOf(expr->name);
      if (idx < 0) return Status::NotFound("unknown column: " + expr->name);
      expr->col_index = idx;
      return Status::OK();
    }
    case Expr::Kind::kFunc:
      if (expr->IsAggregateCall()) {
        return Status::InvalidArgument(
            "aggregate call in scalar context: " + expr->ToString());
      }
      break;
    default:
      break;
  }
  for (auto& arg : expr->args) {
    if (arg->kind == Expr::Kind::kStar) continue;
    SCOOP_RETURN_IF_ERROR(BindExpr(arg.get(), schema));
  }
  return Status::OK();
}

std::string SqlSubstring(const std::string& s, int64_t pos, int64_t len) {
  if (len < 0) len = 0;
  int64_t n = static_cast<int64_t>(s.size());
  int64_t start;
  if (pos > 0) {
    start = pos - 1;
  } else if (pos == 0) {
    start = 0;
  } else {
    start = n + pos;
    if (start < 0) {
      // Spark keeps only the part that lands inside the string.
      len += start;
      start = 0;
      if (len < 0) len = 0;
    }
  }
  if (start >= n) return "";
  len = std::min(len, n - start);
  return s.substr(static_cast<size_t>(start), static_cast<size_t>(len));
}

Value EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumn:
      if (expr.col_index < 0 ||
          static_cast<size_t>(expr.col_index) >= row.size()) {
        return Value::Null();
      }
      return row[static_cast<size_t>(expr.col_index)];
    case Expr::Kind::kStar:
      return Value::Null();
    case Expr::Kind::kUnary: {
      Value v = EvalExpr(*expr.args[0], row);
      if (expr.uop == UnaryOp::kNot) {
        return Value(static_cast<int64_t>(Truthy(v) ? 0 : 1));
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt64) return Value(-v.AsInt64());
      auto num = NumericOf(v);
      if (!num) return Value::Null();
      return Value(-*num);
    }
    case Expr::Kind::kBinary: {
      switch (expr.bop) {
        case BinaryOp::kAnd: {
          // Short-circuit; null behaves as false (see header contract).
          if (!Truthy(EvalExpr(*expr.args[0], row))) {
            return Value(static_cast<int64_t>(0));
          }
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.args[1], row)) ? 1 : 0));
        }
        case BinaryOp::kOr: {
          if (Truthy(EvalExpr(*expr.args[0], row))) {
            return Value(static_cast<int64_t>(1));
          }
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.args[1], row)) ? 1 : 0));
        }
        case BinaryOp::kLike: {
          Value lhs = EvalExpr(*expr.args[0], row);
          Value rhs = EvalExpr(*expr.args[1], row);
          if (lhs.is_null() || rhs.is_null()) {
            return Value(static_cast<int64_t>(0));
          }
          return Value(static_cast<int64_t>(
              LikeMatch(lhs.ToString(), rhs.ToString()) ? 1 : 0));
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvalComparison(expr.bop, EvalExpr(*expr.args[0], row),
                                EvalExpr(*expr.args[1], row));
        default:
          return EvalArith(expr.bop, EvalExpr(*expr.args[0], row),
                           EvalExpr(*expr.args[1], row));
      }
    }
    case Expr::Kind::kFunc: {
      if (expr.name == "substring" || expr.name == "substr") {
        if (expr.args.size() != 3) return Value::Null();
        Value str = EvalExpr(*expr.args[0], row);
        Value pos = EvalExpr(*expr.args[1], row);
        Value len = EvalExpr(*expr.args[2], row);
        if (str.is_null() || pos.is_null() || len.is_null()) {
          return Value::Null();
        }
        return Value(SqlSubstring(str.ToString(),
                                  static_cast<int64_t>(pos.ToDouble()),
                                  static_cast<int64_t>(len.ToDouble())));
      }
      if (expr.name == "upper" || expr.name == "lower") {
        if (expr.args.size() != 1) return Value::Null();
        Value str = EvalExpr(*expr.args[0], row);
        if (str.is_null()) return Value::Null();
        std::string s = str.ToString();
        for (char& c : s) {
          c = expr.name == "upper"
                  ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        return Value(std::move(s));
      }
      if (expr.name == "length") {
        if (expr.args.size() != 1) return Value::Null();
        Value str = EvalExpr(*expr.args[0], row);
        if (str.is_null()) return Value::Null();
        return Value(static_cast<int64_t>(str.ToString().size()));
      }
      if (expr.name == "abs") {
        if (expr.args.size() != 1) return Value::Null();
        Value v = EvalExpr(*expr.args[0], row);
        auto num = NumericOf(v);
        if (!num) return Value::Null();
        if (v.type() == ValueType::kInt64) {
          return Value(std::abs(v.AsInt64()));
        }
        return Value(std::abs(*num));
      }
      if (expr.name == "is_null" || expr.name == "is_not_null") {
        if (expr.args.size() != 1) return Value::Null();
        bool null = EvalExpr(*expr.args[0], row).is_null();
        bool result = expr.name == "is_null" ? null : !null;
        return Value(static_cast<int64_t>(result ? 1 : 0));
      }
      if (expr.name == "coalesce") {
        for (const auto& arg : expr.args) {
          Value v = EvalExpr(*arg, row);
          if (!v.is_null()) return v;
        }
        return Value::Null();
      }
      if (expr.name == "concat") {
        std::string out;
        for (const auto& arg : expr.args) {
          out += EvalExpr(*arg, row).ToString();
        }
        return Value(std::move(out));
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& expr, const Row& row) {
  return Truthy(EvalExpr(expr, row));
}

void CollectColumns(const Expr& expr, std::set<std::string>* out) {
  if (expr.kind == Expr::Kind::kColumn) out->insert(ToLower(expr.name));
  for (const auto& arg : expr.args) CollectColumns(*arg, out);
}

ColumnType InferType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      switch (expr.literal.type()) {
        case ValueType::kInt64:
          return ColumnType::kInt64;
        case ValueType::kDouble:
          return ColumnType::kDouble;
        default:
          return ColumnType::kString;
      }
    case Expr::Kind::kColumn: {
      int idx = schema.IndexOf(expr.name);
      if (idx < 0) return ColumnType::kString;
      return schema.column(static_cast<size_t>(idx)).type;
    }
    case Expr::Kind::kStar:
      return ColumnType::kString;
    case Expr::Kind::kUnary:
      if (expr.uop == UnaryOp::kNot) return ColumnType::kInt64;
      return InferType(*expr.args[0], schema);
    case Expr::Kind::kBinary:
      switch (expr.bop) {
        case BinaryOp::kDiv:
          return ColumnType::kDouble;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          ColumnType lhs = InferType(*expr.args[0], schema);
          ColumnType rhs = InferType(*expr.args[1], schema);
          if (lhs == ColumnType::kInt64 && rhs == ColumnType::kInt64) {
            return ColumnType::kInt64;
          }
          return ColumnType::kDouble;
        }
        default:
          return ColumnType::kInt64;  // booleans render as 0/1
      }
    case Expr::Kind::kFunc:
      if (expr.name == "substring" || expr.name == "substr" ||
          expr.name == "upper" || expr.name == "lower" ||
          expr.name == "concat") {
        return ColumnType::kString;
      }
      if (expr.name == "length" || expr.name == "count" ||
          expr.name == "is_null" || expr.name == "is_not_null") {
        return ColumnType::kInt64;
      }
      if (expr.name == "sum" || expr.name == "avg") {
        return ColumnType::kDouble;
      }
      if (expr.name == "min" || expr.name == "max" ||
          expr.name == "first_value" || expr.name == "coalesce" ||
          expr.name == "abs") {
        if (!expr.args.empty()) return InferType(*expr.args[0], schema);
      }
      return ColumnType::kString;
  }
  return ColumnType::kString;
}

}  // namespace scoop
