// Forwarding header: Value/Row moved to the columnar layer (the batch
// data plane owns the type system now). Kept so existing `sql/value.h`
// includers compile unchanged; new code should include columnar/value.h.
#ifndef SCOOP_SQL_VALUE_H_
#define SCOOP_SQL_VALUE_H_

#include "columnar/value.h"

#endif  // SCOOP_SQL_VALUE_H_
