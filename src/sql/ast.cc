#include "sql/ast.h"

#include "common/strings.h"

namespace scoop {

namespace {
const char* kAggregateNames[] = {"sum", "min", "max",
                                 "count", "avg", "first_value"};
}  // namespace

std::unique_ptr<Expr> Expr::Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Col(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->uop = op;
  e->args.push_back(std::move(arg));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bop = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Func(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunc;
  e->name = ToLower(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->name = name;
  e->bop = bop;
  e->uop = uop;
  e->col_index = col_index;
  e->args.reserve(args.size());
  for (const auto& arg : args) e->args.push_back(arg->Clone());
  return e;
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kLike:
      return "like";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      if (literal.type() == ValueType::kString) {
        return "'" + literal.AsString() + "'";
      }
      return literal.is_null() ? "null" : literal.ToString();
    case Kind::kColumn:
      return ToLower(name);
    case Kind::kStar:
      return "*";
    case Kind::kUnary:
      return std::string(uop == UnaryOp::kNeg ? "-" : "not ") +
             args[0]->ToString();
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " +
             std::string(BinaryOpName(bop)) + " " + args[1]->ToString() + ")";
    case Kind::kFunc: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Expr::IsAggregateCall() const {
  if (kind != Kind::kFunc) return false;
  for (const char* agg : kAggregateNames) {
    if (name == agg) return true;
  }
  return false;
}

bool Expr::ContainsAggregate() const {
  if (IsAggregateCall()) return true;
  for (const auto& arg : args) {
    if (arg->ContainsAggregate()) return true;
  }
  return false;
}

bool SelectStatement::HasAggregates() const {
  if (!group_by.empty() || having != nullptr) return true;
  for (const SelectItem& item : items) {
    if (item.expr->ContainsAggregate()) return true;
  }
  return false;
}

std::string SelectStatement::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " as " + items[i].alias;
  }
  out += " from " + table;
  if (where != nullptr) out += " where " + where->ToString();
  if (!group_by.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " having " + having->ToString();
  if (!order_by.empty()) {
    out += " order by ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " desc";
    }
  }
  if (limit >= 0) out += " limit " + std::to_string(limit);
  return out;
}

}  // namespace scoop
