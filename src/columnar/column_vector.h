// One typed column of a RecordBatch: a flat value array plus a validity
// bitmap, Arrow-style. String columns keep their bytes in a single arena
// (offsets + bytes) and can additionally carry a dictionary when the
// column is low-cardinality — the batch evaluator then tests each
// distinct value once and maps codes, and the wire format ships the
// dictionary instead of the repeated bytes.
#ifndef SCOOP_COLUMNAR_COLUMN_VECTOR_H_
#define SCOOP_COLUMNAR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "columnar/schema.h"
#include "columnar/value.h"

namespace scoop {

class ColumnVector {
 public:
  // Dictionary build cutoff: a string column that exceeds this many
  // distinct values abandons its dictionary (the flat arena is always
  // maintained, so nothing is re-encoded).
  static constexpr int32_t kMaxDictCardinality = 256;

  explicit ColumnVector(ColumnType type, bool dictionary = false)
      : type_(type), dict_active_(dictionary && type == ColumnType::kString) {}

  ColumnType type() const { return type_; }
  int64_t size() const { return size_; }

  bool is_null(int64_t i) const {
    return (validity_[static_cast<size_t>(i) >> 6] &
            (1ull << (static_cast<size_t>(i) & 63))) == 0;
  }
  int64_t Int64At(int64_t i) const { return ints_[i]; }
  double DoubleAt(int64_t i) const { return doubles_[i]; }
  std::string_view StringAt(int64_t i) const {
    return std::string_view(bytes_).substr(offsets_[i],
                                           offsets_[i + 1] - offsets_[i]);
  }
  // The value at row `i` as a dynamically-typed Value (the row-adapter
  // bridge; null rows yield Value::Null()).
  Value GetValue(int64_t i) const;

  void Reserve(int64_t n);
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  // Typed append for the row adapters. A value whose type mismatches the
  // column is converted (numeric casts; ToString() for string columns) —
  // well-typed rows round-trip exactly.
  void AppendValue(const Value& v);

  // --- dictionary view -------------------------------------------------
  bool dict_active() const { return dict_active_; }
  int32_t dict_size() const { return static_cast<int32_t>(dict_lens_.size()); }
  std::string_view DictValue(int32_t code) const {
    return std::string_view(dict_bytes_)
        .substr(dict_starts_[code], dict_lens_[code]);
  }
  // Dictionary code of row `i` (-1 for null). Valid only while
  // dict_active().
  int32_t CodeAt(int64_t i) const { return codes_[i]; }

  // Rebuilds a dictionary-encoded column from its wire parts (codes use
  // -1 for null). The flat arena is materialized so StringAt stays O(1).
  static ColumnVector FromDictionary(const std::vector<std::string>& values,
                                     const std::vector<int32_t>& codes);

  // --- raw views for the wire format -----------------------------------
  const std::vector<uint64_t>& validity_words() const { return validity_; }
  const std::vector<int64_t>& int64_data() const { return ints_; }
  const std::vector<double>& double_data() const { return doubles_; }
  const std::vector<uint32_t>& string_offsets() const { return offsets_; }
  const std::string& string_bytes() const { return bytes_; }
  const std::vector<int32_t>& dict_codes() const { return codes_; }

 private:
  void AppendValidity(bool valid);

  ColumnType type_;
  int64_t size_ = 0;
  std::vector<uint64_t> validity_;  // bit set = non-null

  std::vector<int64_t> ints_;     // kInt64 (0 for null)
  std::vector<double> doubles_;   // kDouble (0.0 for null)
  std::vector<uint32_t> offsets_ = {0};  // kString: arena offsets, size()+1
  std::string bytes_;

  // Dictionary state (kString only, while dict_active_).
  bool dict_active_ = false;
  std::vector<int32_t> codes_;          // per row, -1 = null
  std::vector<uint32_t> dict_starts_;   // per distinct value, into dict_bytes_
  std::vector<uint32_t> dict_lens_;
  std::string dict_bytes_;
  // Heterogeneous lookup so the hot append path probes with a
  // string_view instead of materializing a std::string per row.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, int32_t, TransparentHash, std::equal_to<>>
      dict_index_;
};

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_COLUMN_VECTOR_H_
