#include "columnar/schema.h"

#include "common/strings.h"

namespace scoop {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
  }
  return "?";
}

Result<ColumnType> ColumnTypeFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "string") return ColumnType::kString;
  if (lower == "int64" || lower == "int" || lower == "long") {
    return ColumnType::kInt64;
  }
  if (lower == "double" || lower == "float") return ColumnType::kDouble;
  return Status::InvalidArgument("unknown column type: " + lower);
}

int Schema::IndexOf(std::string_view name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) == lower) return static_cast<int>(i);
  }
  return -1;
}

Result<Schema> Schema::Select(const std::vector<std::string>& names) const {
  std::vector<Column> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    int idx = IndexOf(name);
    if (idx < 0) return Status::NotFound("no column named " + name);
    out.push_back(columns_[static_cast<size_t>(idx)]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToSpec() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ",";
    out += columns_[i].name;
    out += ":";
    out += ColumnTypeName(columns_[i].type);
  }
  return out;
}

Result<Schema> Schema::FromSpec(std::string_view spec) {
  std::vector<Column> columns;
  if (Trim(spec).empty()) return Schema();
  for (std::string_view part : Split(spec, ',')) {
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("bad column spec: " + std::string(part));
    }
    Column column;
    column.name = std::string(Trim(part.substr(0, colon)));
    if (column.name.empty()) {
      return Status::InvalidArgument("empty column name in schema spec");
    }
    SCOOP_ASSIGN_OR_RETURN(column.type,
                           ColumnTypeFromName(Trim(part.substr(colon + 1))));
    columns.push_back(std::move(column));
  }
  return Schema(std::move(columns));
}

}  // namespace scoop
