#include "columnar/record_batch.h"

namespace scoop {

RecordBatch::RecordBatch(Schema schema, bool dictionary_encode)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const Column& column : schema_.columns()) {
    columns_.push_back(
        std::make_shared<ColumnVector>(column.type, dictionary_encode));
  }
}

void RecordBatch::Reserve(int64_t n) {
  for (auto& column : columns_) column->Reserve(n);
}

void RecordBatch::AppendRow(const Row& row) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i < row.size()) {
      columns_[i]->AppendValue(row[i]);
    } else {
      columns_[i]->AppendNull();
    }
  }
  ++rows_;
}

void RecordBatch::ExtractRow(int64_t i, Row* row) const {
  row->clear();
  row->reserve(columns_.size());
  for (const auto& column : columns_) row->push_back(column->GetValue(i));
}

std::vector<Row> RecordBatch::ToRows() const {
  std::vector<Row> rows(rows_);
  for (int64_t i = 0; i < rows_; ++i) ExtractRow(i, &rows[i]);
  return rows;
}

RecordBatch RecordBatch::FromRows(const Schema& schema,
                                  const std::vector<Row>& rows,
                                  bool dictionary_encode) {
  RecordBatch batch(schema, dictionary_encode);
  batch.Reserve(static_cast<int64_t>(rows.size()));
  for (const Row& row : rows) batch.AppendRow(row);
  return batch;
}

RecordBatch RecordBatch::SelectColumns(const Schema& projected,
                                       const std::vector<int>& indices) const {
  RecordBatch out;
  out.schema_ = projected;
  out.rows_ = rows_;
  out.columns_.reserve(indices.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= 0) {
      out.columns_.push_back(columns_[indices[k]]);
    } else {
      auto nulls =
          std::make_shared<ColumnVector>(projected.column(k).type);
      nulls->Reserve(rows_);
      for (int64_t i = 0; i < rows_; ++i) nulls->AppendNull();
      out.columns_.push_back(std::move(nulls));
    }
  }
  return out;
}

}  // namespace scoop
