// Structural byte scanning for the vectorized CSV path: classify every
// ',', '\n', and '"' in a buffer in one pass, emitting tagged offsets the
// batch reader walks instead of calling find() per field.
//
// Three implementations behind one entry point, chosen at build time by
// the SCOOP_ENABLE_SIMD CMake option (AUTO probes the toolchain):
//  * SSE2: 16-byte compares + movemask (x86-64 baseline, no extra flags),
//  * SWAR: 8-byte "SIMD within a register" bit tricks, portable C++,
//  * scalar tail loop for the final sub-block bytes of either path.
// All three produce bit-identical position streams; tests assert it.
//
// This header/source pair is the ONLY place allowed to include CPU
// intrinsics headers (tools/lint.py include-hygiene enforces this), so
// platform dispatch never leaks into the data plane.
#ifndef SCOOP_COLUMNAR_SIMD_H_
#define SCOOP_COLUMNAR_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scoop {

// Tag bits packed into the top of each emitted offset. Offsets are
// 30-bit, which bounds a single scanned buffer at 1 GiB — far above the
// object-chunk sizes the data plane feeds through this scanner.
enum : uint32_t {
  kCsvTagComma = 0u << 30,
  kCsvTagNewline = 1u << 30,
  kCsvTagQuote = 2u << 30,
  kCsvTagMask = 3u << 30,
  kCsvOffsetMask = ~(3u << 30),
};

// Appends one tagged offset per structural byte (',', '\n', '"') in
// `data` to `out`, in order. Offsets are relative to `data`.
void ScanCsvStructural(const char* data, size_t size,
                       std::vector<uint32_t>* out);

// True when the SSE2 path is compiled in (SCOOP_ENABLE_SIMD resolved ON).
bool SimdEnabled();

// Bytes `ScanCsvStructural` has pushed through the block classifier
// (SSE2 or SWAR) since process start, feeding the csv.simd_bytes
// counter. Scalar-tail bytes are excluded. Monotonic, thread-safe.
uint64_t SimdBytesScanned();

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_SIMD_H_
