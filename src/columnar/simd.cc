#include "columnar/simd.h"

#include <atomic>

#if !defined(SCOOP_SIMD_ENABLED)
#define SCOOP_SIMD_ENABLED 0
#endif

#if SCOOP_SIMD_ENABLED && defined(__SSE2__)
#include <emmintrin.h>
#define SCOOP_SIMD_SSE2 1
#else
#define SCOOP_SIMD_SSE2 0
#endif

namespace scoop {

namespace {

std::atomic<uint64_t> g_simd_bytes{0};

inline uint32_t Tagged(size_t offset, char c) {
  uint32_t tag = c == ',' ? kCsvTagComma
                          : (c == '\n' ? kCsvTagNewline : kCsvTagQuote);
  return static_cast<uint32_t>(offset) | tag;
}

// Scalar loop for buffer tails shorter than one classifier block.
inline void ScanScalar(const char* data, size_t begin, size_t end,
                       std::vector<uint32_t>* out) {
  for (size_t i = begin; i < end; ++i) {
    char c = data[i];
    if (c == ',' || c == '\n' || c == '"') out->push_back(Tagged(i, c));
  }
}

#if SCOOP_SIMD_SSE2

void ScanBlocks(const char* data, size_t size, std::vector<uint32_t>* out) {
  const __m128i comma = _mm_set1_epi8(',');
  const __m128i newline = _mm_set1_epi8('\n');
  const __m128i quote = _mm_set1_epi8('"');
  size_t i = 0;
  for (; i + 16 <= size; i += 16) {
    __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    uint32_t commas = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, comma)));
    uint32_t newlines = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, newline)));
    uint32_t quotes = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, quote)));
    uint32_t any = commas | newlines | quotes;
    while (any != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctz(any));
      size_t offset = i + bit;
      uint32_t mask = 1u << bit;
      uint32_t tag = (newlines & mask) != 0
                         ? kCsvTagNewline
                         : ((quotes & mask) != 0 ? kCsvTagQuote
                                                 : kCsvTagComma);
      out->push_back(static_cast<uint32_t>(offset) | tag);
      any &= any - 1;
    }
  }
  g_simd_bytes.fetch_add(i, std::memory_order_relaxed);
  ScanScalar(data, i, size, out);
}

#else  // SWAR fallback

// Exact SWAR zero-byte classifier: bit 7 of each byte is set iff that
// byte of x is 0. The textbook (x - 0x01..) & ~x & 0x80.. detector is
// NOT usable here: its subtraction borrows across byte lanes, falsely
// flagging a 0x01 byte that sits above a run of zero bytes (e.g. '-'
// right after a matched ','). This form is carry-free — each lane's sum
// is at most 0x7F + 0x7F, so lanes never interact.
inline uint64_t ZeroBytes(uint64_t x) {
  uint64_t t = (x & 0x7F7F7F7F7F7F7F7Full) + 0x7F7F7F7F7F7F7F7Full;
  return ~(t | x | 0x7F7F7F7F7F7F7F7Full);
}

inline uint64_t Broadcast(char c) {
  return 0x0101010101010101ull * static_cast<uint8_t>(c);
}

void ScanBlocks(const char* data, size_t size, std::vector<uint32_t>* out) {
  const uint64_t comma = Broadcast(',');
  const uint64_t newline = Broadcast('\n');
  const uint64_t quote = Broadcast('"');
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    __builtin_memcpy(&word, data + i, 8);
    uint64_t commas = ZeroBytes(word ^ comma);
    uint64_t newlines = ZeroBytes(word ^ newline);
    uint64_t quotes = ZeroBytes(word ^ quote);
    uint64_t any = commas | newlines | quotes;
    while (any != 0) {
      // Each match sets bit 7 of its byte; ctz/8 is the byte index
      // (little-endian byte order matches memcpy above).
      uint32_t byte = static_cast<uint32_t>(__builtin_ctzll(any)) / 8;
      uint64_t mask = 0x80ull << (byte * 8);
      uint32_t tag = (newlines & mask) != 0
                         ? kCsvTagNewline
                         : ((quotes & mask) != 0 ? kCsvTagQuote
                                                 : kCsvTagComma);
      out->push_back((static_cast<uint32_t>(i) + byte) | tag);
      any &= any - 1;
    }
  }
  g_simd_bytes.fetch_add(i, std::memory_order_relaxed);
  ScanScalar(data, i, size, out);
}

#endif

}  // namespace

void ScanCsvStructural(const char* data, size_t size,
                       std::vector<uint32_t>* out) {
  ScanBlocks(data, size, out);
}

bool SimdEnabled() { return SCOOP_SIMD_SSE2 != 0; }

uint64_t SimdBytesScanned() {
  return g_simd_bytes.load(std::memory_order_relaxed);
}

}  // namespace scoop
