// A schema plus one ColumnVector per column — the unit of work the batch
// data plane moves between the scanner, the evaluator, and the storlet
// wire. Columns are held by shared_ptr so projection is a pointer copy,
// not a data copy.
#ifndef SCOOP_COLUMNAR_RECORD_BATCH_H_
#define SCOOP_COLUMNAR_RECORD_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "columnar/column_vector.h"
#include "columnar/schema.h"
#include "columnar/value.h"

namespace scoop {

// Rows the scanner packs into one batch before handing it downstream;
// large enough to amortize per-batch overhead, small enough to stay in
// cache.
inline constexpr int64_t kDefaultBatchRows = 4096;

class RecordBatch {
 public:
  RecordBatch() = default;
  // Creates an empty batch with one column vector per schema column.
  explicit RecordBatch(Schema schema, bool dictionary_encode = false);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return columns_[i].get(); }

  void Reserve(int64_t n);
  // Callers appending directly to the column vectors must keep them in
  // lockstep and then account the rows here.
  void set_num_rows(int64_t n) { rows_ = n; }

  // Replaces column `i` with an externally-built vector (e.g. a
  // dictionary column decoded straight off the parquet wire). The caller
  // keeps the row counts in lockstep, as with mutable_column().
  void SetColumn(size_t i, ColumnVector column) {
    columns_[i] = std::make_shared<ColumnVector>(std::move(column));
  }

  void AppendRow(const Row& row);
  // Materializes row `i` into `row` (cleared first) — the bridge back to
  // the row-at-a-time APIs.
  void ExtractRow(int64_t i, Row* row) const;
  std::vector<Row> ToRows() const;
  static RecordBatch FromRows(const Schema& schema, const std::vector<Row>& rows,
                              bool dictionary_encode = false);

  // Projection: column k of the result is this batch's column
  // `indices[k]` (shared, zero-copy), or an all-null column of
  // `projected`'s declared type when `indices[k]` < 0.
  RecordBatch SelectColumns(const Schema& projected,
                            const std::vector<int>& indices) const;

 private:
  Schema schema_;
  int64_t rows_ = 0;
  std::vector<std::shared_ptr<ColumnVector>> columns_;
};

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_RECORD_BATCH_H_
