#ifndef SCOOP_COLUMNAR_VALUE_H_
#define SCOOP_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "columnar/schema.h"

namespace scoop {

enum class ValueType { kNull, kInt64, kDouble, kString };

// A dynamically-typed SQL value. Row data flows through the executor as
// vectors of these.
class Value {
 public:
  Value() = default;  // null
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(std::string_view v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index() == 0
                                      ? 0
                                      : static_cast<int>(data_.index()));
  }
  bool is_null() const { return data_.index() == 0; }

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // Numeric view: int64 promoted to double; 0.0 for null/strings that are
  // not numeric contexts (callers check types first).
  double ToDouble() const;

  // SQL-ish display form ("" for null).
  std::string ToString() const;

  // Parses a raw CSV field into a typed value. Empty fields become null.
  // Unparseable numeric fields become null (Spark-CSV permissive mode).
  static Value FromField(std::string_view field, ColumnType type);

  // Three-way comparison: -1/0/+1. Null sorts before everything; numeric
  // types compare numerically (with int->double promotion); strings
  // compare lexicographically. Mixed string/number compares as strings.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable hash for group-by keys.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

// A row of values, one per schema column.
using Row = std::vector<Value>;

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_VALUE_H_
