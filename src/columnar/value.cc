#include "columnar/value.h"

#include <cmath>

#include "common/hash.h"
#include "common/strings.h"

namespace scoop {

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDoubleExact();
    case ValueType::kString: {
      auto parsed = ParseDouble(AsString());
      return parsed.ok() ? *parsed : 0.0;
    }
    case ValueType::kNull:
      return 0.0;
  }
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      // One fixed rendering for all doubles: values that round-trip
      // through CSV text must display identically to values that never
      // left memory, or distributed and reference results would diverge.
      return StrFormat("%.6g", AsDoubleExact());
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Value Value::FromField(std::string_view field, ColumnType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ColumnType::kString:
      return Value(field);
    case ColumnType::kInt64: {
      auto parsed = ParseInt64(field);
      if (parsed.ok()) return Value(*parsed);
      return Value::Null();
    }
    case ColumnType::kDouble: {
      auto parsed = ParseDouble(field);
      if (parsed.ok()) return Value(*parsed);
      return Value::Null();
    }
  }
  return Value::Null();
}

int Value::Compare(const Value& other) const {
  bool a_null = is_null();
  bool b_null = other.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return -1;
  if (b_null) return 1;
  bool a_num = type() == ValueType::kInt64 || type() == ValueType::kDouble;
  bool b_num =
      other.type() == ValueType::kInt64 || other.type() == ValueType::kDouble;
  if (a_num && b_num) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      int64_t a = AsInt64();
      int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble();
    double b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Mixed or string comparison: compare display forms.
  std::string a = ToString();
  std::string b = other.ToString();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      double v = AsDoubleExact();
      // Hash integral doubles like the equal int64 so 1 and 1.0 group
      // together, matching Compare().
      if (std::floor(v) == v && std::abs(v) < 9e18) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(v)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

}  // namespace scoop
