// Length-prefixed wire encoding of RecordBatches for the storlet
// pipeline. Frames are self-delimiting, so a stream of them survives the
// arbitrary re-chunking ByteStream transports perform: the reader buffers
// bytes until a whole frame is present, however the producer's writes
// were split or coalesced.
//
// Frame layout (all integers little-endian):
//   "SBT1"                       magic
//   u32  payload_len
//   payload:
//     u32  schema_spec_len, schema spec bytes (Schema::ToSpec)
//     u32  num_rows
//     per column, in schema order:
//       u8   encoding: 0 = plain, 1 = dictionary (string columns only)
//       validity bitmap: ceil(num_rows / 64) u64 words
//       kInt64:  num_rows u64 values
//       kDouble: num_rows u64 bit patterns
//       kString plain: u32 arena_len, (num_rows + 1) u32 offsets, arena
//       kString dict:  u32 dict_count, dict_count * (u32 len + bytes),
//                      num_rows i32 codes (-1 = null)
#ifndef SCOOP_COLUMNAR_BATCH_WIRE_H_
#define SCOOP_COLUMNAR_BATCH_WIRE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "columnar/record_batch.h"

namespace scoop {

inline constexpr std::string_view kBatchWireMagic = "SBT1";

// True when `data` starts with a batch-wire frame header (used by
// storlets to sniff whether their input is text CSV or batch frames).
bool LooksLikeBatchWire(std::string_view data);

// Appends one frame carrying `batch` to `out`.
void AppendBatchFrame(const RecordBatch& batch, std::string* out);

// Incremental frame decoder. Feed() accepts bytes in any chunking;
// Next() yields a decoded batch per complete frame.
class BatchWireReader {
 public:
  void Feed(std::string_view data) { buf_.append(data); }

  // Decodes the next complete frame into `batch`. Returns false when the
  // buffered bytes do not yet hold a whole frame (feed more / EOF), and
  // an error status on malformed frames.
  Result<bool> Next(RecordBatch* batch);

  // Bytes buffered but not yet consumed by a decoded frame. Non-zero at
  // EOF means a truncated trailing frame.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_BATCH_WIRE_H_
