#ifndef SCOOP_COLUMNAR_SCHEMA_H_
#define SCOOP_COLUMNAR_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scoop {

// Column data types of the structured layer. CSV fields are parsed into
// these on scan, mirroring Spark-CSV's schema application.
enum class ColumnType { kString, kInt64, kDouble };

std::string_view ColumnTypeName(ColumnType type);
Result<ColumnType> ColumnTypeFromName(std::string_view name);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

// An ordered list of named, typed columns (Spark's StructType).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  // Case-insensitive column lookup; -1 when absent.
  int IndexOf(std::string_view name) const;
  bool Has(std::string_view name) const { return IndexOf(name) >= 0; }

  // New schema keeping only `names`, in the given order. Errors on an
  // unknown name.
  Result<Schema> Select(const std::vector<std::string>& names) const;

  // "name:type,name:type,...", the wire form used in storlet parameters.
  std::string ToSpec() const;
  static Result<Schema> FromSpec(std::string_view spec);

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace scoop

#endif  // SCOOP_COLUMNAR_SCHEMA_H_
