#include "columnar/column_vector.h"

namespace scoop {

Value ColumnVector::GetValue(int64_t i) const {
  if (is_null(i)) return Value::Null();
  switch (type_) {
    case ColumnType::kInt64:
      return Value(ints_[i]);
    case ColumnType::kDouble:
      return Value(doubles_[i]);
    case ColumnType::kString:
      return Value(StringAt(i));
  }
  return Value::Null();
}

void ColumnVector::Reserve(int64_t n) {
  validity_.reserve((static_cast<size_t>(n) + 63) / 64);
  switch (type_) {
    case ColumnType::kInt64:
      ints_.reserve(n);
      break;
    case ColumnType::kDouble:
      doubles_.reserve(n);
      break;
    case ColumnType::kString:
      offsets_.reserve(n + 1);
      if (dict_active_) codes_.reserve(n);
      break;
  }
}

void ColumnVector::AppendValidity(bool valid) {
  size_t word = static_cast<size_t>(size_) >> 6;
  if (word >= validity_.size()) validity_.push_back(0);
  if (valid) validity_[word] |= 1ull << (static_cast<size_t>(size_) & 63);
  ++size_;
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case ColumnType::kInt64:
      ints_.push_back(0);
      break;
    case ColumnType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnType::kString:
      offsets_.push_back(offsets_.back());
      if (dict_active_) codes_.push_back(-1);
      break;
  }
  AppendValidity(false);
}

void ColumnVector::AppendInt64(int64_t v) {
  ints_.push_back(v);
  AppendValidity(true);
}

void ColumnVector::AppendDouble(double v) {
  doubles_.push_back(v);
  AppendValidity(true);
}

void ColumnVector::AppendString(std::string_view v) {
  bytes_.append(v);
  offsets_.push_back(static_cast<uint32_t>(bytes_.size()));
  if (dict_active_) {
    auto it = dict_index_.find(v);
    if (it != dict_index_.end()) {
      codes_.push_back(it->second);
    } else if (dict_size() < kMaxDictCardinality) {
      int32_t code = dict_size();
      dict_starts_.push_back(static_cast<uint32_t>(dict_bytes_.size()));
      dict_lens_.push_back(static_cast<uint32_t>(v.size()));
      dict_bytes_.append(v);
      dict_index_.emplace(std::string(v), code);
      codes_.push_back(code);
    } else {
      // Cardinality blew the cutoff: abandon the dictionary. The flat
      // arena already holds every value, so this is just bookkeeping.
      dict_active_ = false;
      codes_.clear();
      dict_starts_.clear();
      dict_lens_.clear();
      dict_bytes_.clear();
      dict_index_.clear();
    }
  }
  AppendValidity(true);
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      AppendInt64(v.type() == ValueType::kInt64
                      ? v.AsInt64()
                      : static_cast<int64_t>(v.ToDouble()));
      return;
    case ColumnType::kDouble:
      AppendDouble(v.ToDouble());
      return;
    case ColumnType::kString:
      if (v.type() == ValueType::kString) {
        AppendString(v.AsString());
      } else {
        AppendString(v.ToString());
      }
      return;
  }
}

ColumnVector ColumnVector::FromDictionary(
    const std::vector<std::string>& values, const std::vector<int32_t>& codes) {
  ColumnVector col(ColumnType::kString, /*dictionary=*/true);
  for (int32_t code = 0; code < static_cast<int32_t>(values.size()); ++code) {
    col.dict_starts_.push_back(static_cast<uint32_t>(col.dict_bytes_.size()));
    col.dict_lens_.push_back(static_cast<uint32_t>(values[code].size()));
    col.dict_bytes_.append(values[code]);
    col.dict_index_.emplace(values[code], code);
  }
  for (int32_t code : codes) {
    if (code < 0) {
      col.offsets_.push_back(col.offsets_.back());
      col.codes_.push_back(-1);
      col.AppendValidity(false);
    } else {
      std::string_view v = col.DictValue(code);
      col.bytes_.append(v);
      col.offsets_.push_back(static_cast<uint32_t>(col.bytes_.size()));
      col.codes_.push_back(code);
      col.AppendValidity(true);
    }
  }
  return col;
}

}  // namespace scoop
