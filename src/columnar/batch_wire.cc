#include "columnar/batch_wire.h"

#include <cstring>

namespace scoop {

namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

// Bounds-checked little-endian cursor over one frame payload.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint32_t> U32() {
    if (data_.size() - pos_ < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (i * 8);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    if (data_.size() - pos_ < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (i * 8);
    }
    pos_ += 8;
    return v;
  }

  Result<uint8_t> U8() {
    if (pos_ >= data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<std::string_view> Bytes(size_t n) {
    if (data_.size() - pos_ < n) return Truncated();
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool Done() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("batch wire: truncated frame payload");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status DecodePayload(std::string_view payload, RecordBatch* batch) {
  WireReader in(payload);
  SCOOP_ASSIGN_OR_RETURN(uint32_t spec_len, in.U32());
  SCOOP_ASSIGN_OR_RETURN(std::string_view spec, in.Bytes(spec_len));
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(spec));
  SCOOP_ASSIGN_OR_RETURN(uint32_t num_rows, in.U32());

  RecordBatch out(schema);
  size_t validity_words = (num_rows + 63) / 64;
  for (size_t c = 0; c < schema.size(); ++c) {
    SCOOP_ASSIGN_OR_RETURN(uint8_t encoding, in.U8());
    std::vector<uint64_t> validity(validity_words);
    for (size_t w = 0; w < validity_words; ++w) {
      SCOOP_ASSIGN_OR_RETURN(validity[w], in.U64());
    }
    auto valid = [&](uint32_t i) {
      return (validity[i >> 6] & (1ull << (i & 63))) != 0;
    };
    ColumnVector* col = out.mutable_column(c);
    switch (schema.column(c).type) {
      case ColumnType::kInt64:
        for (uint32_t i = 0; i < num_rows; ++i) {
          SCOOP_ASSIGN_OR_RETURN(uint64_t bits, in.U64());
          if (valid(i)) {
            col->AppendInt64(static_cast<int64_t>(bits));
          } else {
            col->AppendNull();
          }
        }
        break;
      case ColumnType::kDouble:
        for (uint32_t i = 0; i < num_rows; ++i) {
          SCOOP_ASSIGN_OR_RETURN(uint64_t bits, in.U64());
          if (valid(i)) {
            double v;
            std::memcpy(&v, &bits, sizeof(v));
            col->AppendDouble(v);
          } else {
            col->AppendNull();
          }
        }
        break;
      case ColumnType::kString: {
        if (encoding == 1) {
          SCOOP_ASSIGN_OR_RETURN(uint32_t dict_count, in.U32());
          std::vector<std::string> values;
          values.reserve(dict_count);
          for (uint32_t d = 0; d < dict_count; ++d) {
            SCOOP_ASSIGN_OR_RETURN(uint32_t len, in.U32());
            SCOOP_ASSIGN_OR_RETURN(std::string_view bytes, in.Bytes(len));
            values.emplace_back(bytes);
          }
          std::vector<int32_t> codes(num_rows);
          for (uint32_t i = 0; i < num_rows; ++i) {
            SCOOP_ASSIGN_OR_RETURN(uint32_t code, in.U32());
            codes[i] = static_cast<int32_t>(code);
            if (codes[i] >= static_cast<int32_t>(dict_count)) {
              return Status::InvalidArgument(
                  "batch wire: dictionary code out of range");
            }
          }
          *col = ColumnVector::FromDictionary(values, codes);
        } else {
          SCOOP_ASSIGN_OR_RETURN(uint32_t arena_len, in.U32());
          std::vector<uint32_t> offsets(num_rows + 1);
          for (uint32_t i = 0; i <= num_rows; ++i) {
            SCOOP_ASSIGN_OR_RETURN(offsets[i], in.U32());
          }
          SCOOP_ASSIGN_OR_RETURN(std::string_view arena, in.Bytes(arena_len));
          for (uint32_t i = 0; i < num_rows; ++i) {
            if (!valid(i)) {
              col->AppendNull();
              continue;
            }
            if (offsets[i + 1] < offsets[i] || offsets[i + 1] > arena_len) {
              return Status::InvalidArgument(
                  "batch wire: string offsets out of range");
            }
            col->AppendString(
                arena.substr(offsets[i], offsets[i + 1] - offsets[i]));
          }
        }
        break;
      }
    }
    if (col->size() != static_cast<int64_t>(num_rows)) {
      return Status::Internal("batch wire: column row count mismatch");
    }
  }
  if (!in.Done()) {
    return Status::InvalidArgument("batch wire: trailing bytes in frame");
  }
  out.set_num_rows(num_rows);
  *batch = std::move(out);
  return Status::OK();
}

}  // namespace

bool LooksLikeBatchWire(std::string_view data) {
  if (data.size() < kBatchWireMagic.size() ||
      data.substr(0, kBatchWireMagic.size()) != kBatchWireMagic) {
    return false;
  }
  // The magic alone is spoofable: a CSV record can legitimately start
  // with the bytes "SBT1". Corroborate with the header fields when the
  // sniffer peeked far enough: a real frame's payload_len is small-ish
  // (the producer caps batches at kDefaultBatchRows) and its payload
  // starts with a plausible schema-spec length, while ASCII text decoded
  // as little-endian u32 always lands >= 0x09000000 (every printable or
  // whitespace byte exceeds 0x08, and it ends up as the high byte).
  auto u32_at = [&](size_t off) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data[off + i]))
           << (i * 8);
    }
    return v;
  };
  if (data.size() >= kBatchWireMagic.size() + 4) {
    uint32_t payload_len = u32_at(kBatchWireMagic.size());
    // Minimum real payload: u32 spec_len + u32 num_rows.
    if (payload_len < 8 || payload_len > (64u << 20)) return false;
    if (data.size() >= kBatchWireMagic.size() + 8) {
      uint32_t spec_len = u32_at(kBatchWireMagic.size() + 4);
      if (spec_len > 4096 || spec_len + 8 > payload_len) return false;
    }
  }
  return true;
}

void AppendBatchFrame(const RecordBatch& batch, std::string* out) {
  std::string payload;
  std::string spec = batch.schema().ToSpec();
  PutU32(static_cast<uint32_t>(spec.size()), &payload);
  payload.append(spec);
  uint32_t num_rows = static_cast<uint32_t>(batch.num_rows());
  PutU32(num_rows, &payload);
  size_t validity_words = (num_rows + 63) / 64;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnVector& col = batch.column(c);
    bool dict = col.type() == ColumnType::kString && col.dict_active();
    payload.push_back(dict ? 1 : 0);
    const std::vector<uint64_t>& validity = col.validity_words();
    for (size_t w = 0; w < validity_words; ++w) {
      PutU64(w < validity.size() ? validity[w] : 0, &payload);
    }
    switch (col.type()) {
      case ColumnType::kInt64:
        for (int64_t v : col.int64_data()) {
          PutU64(static_cast<uint64_t>(v), &payload);
        }
        break;
      case ColumnType::kDouble:
        for (double v : col.double_data()) {
          uint64_t bits;
          std::memcpy(&bits, &v, sizeof(bits));
          PutU64(bits, &payload);
        }
        break;
      case ColumnType::kString:
        if (dict) {
          PutU32(static_cast<uint32_t>(col.dict_size()), &payload);
          for (int32_t d = 0; d < col.dict_size(); ++d) {
            std::string_view v = col.DictValue(d);
            PutU32(static_cast<uint32_t>(v.size()), &payload);
            payload.append(v);
          }
          for (int32_t code : col.dict_codes()) {
            PutU32(static_cast<uint32_t>(code), &payload);
          }
        } else {
          PutU32(static_cast<uint32_t>(col.string_bytes().size()), &payload);
          for (uint32_t offset : col.string_offsets()) {
            PutU32(offset, &payload);
          }
          payload.append(col.string_bytes());
        }
        break;
    }
  }
  out->append(kBatchWireMagic);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

Result<bool> BatchWireReader::Next(RecordBatch* batch) {
  size_t header = kBatchWireMagic.size() + 4;
  if (buf_.size() - pos_ < header) return false;
  std::string_view view(buf_);
  if (view.substr(pos_, kBatchWireMagic.size()) != kBatchWireMagic) {
    return Status::InvalidArgument("batch wire: bad frame magic");
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(
                       buf_[pos_ + kBatchWireMagic.size() + i]))
                   << (i * 8);
  }
  if (buf_.size() - pos_ - header < payload_len) return false;
  Status decoded =
      DecodePayload(view.substr(pos_ + header, payload_len), batch);
  if (!decoded.ok()) return decoded;
  pos_ += header + payload_len;
  // Drop consumed frames so long pipelines stay bounded by one frame.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 20)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace scoop
