#ifndef SCOOP_CSV_AGG_STORLET_H_
#define SCOOP_CSV_AGG_STORLET_H_

#include <memory>
#include <string>

#include "storlets/storlet.h"

namespace scoop {

// Partial-aggregation pushdown — the paper's §IV example of the object
// store "perform[ing] aggregations on individual object requests to
// facilitate the construction of graphs from a large dataset", and the
// general §VII observation that any computation running independently
// over disjoint parts of the dataset can be pushed down.
//
// Parameters:
//   schema    — "name:type,..." of the object's columns (required)
//   group     — comma-separated grouping column names (optional; absent
//               means one global group)
//   aggs      — comma-separated "<fn>:<column>" specs, fn in
//               {sum, min, max, count, avg is NOT offered — avg does not
//               partial-merge as a single value; push sum and count
//               instead}; count accepts "*" as column (required)
//   selection — serialized SourceFilter applied before aggregating
//
// Output: CSV rows "<group values...>,<agg values...>", one per group, in
// sorted group-key order; sum/count over integer columns stay integral.
// These are *partial* results for one object/range; the compute side
// merges partials across requests (sum+=, min/max fold, count+=) — which
// is exactly what the AggState machinery in sql/aggregates.h does.
class GroupAggStorlet : public Storlet {
 public:
  static constexpr char kName[] = "aggstorlet";

  std::string name() const override { return kName; }

  Status Invoke(StorletInputStream& input, StorletOutputStream& output,
                const StorletParams& params, StorletLogger& logger) override;

  static std::unique_ptr<Storlet> Make() {
    return std::make_unique<GroupAggStorlet>();
  }
};

}  // namespace scoop

#endif  // SCOOP_CSV_AGG_STORLET_H_
