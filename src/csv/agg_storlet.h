#ifndef SCOOP_CSV_AGG_STORLET_H_
#define SCOOP_CSV_AGG_STORLET_H_

#include <memory>
#include <string>

#include "storlets/storlet.h"

namespace scoop {

// Partial-aggregation pushdown — the paper's §IV example of the object
// store "perform[ing] aggregations on individual object requests to
// facilitate the construction of graphs from a large dataset", and the
// general §VII observation that any computation running independently
// over disjoint parts of the dataset can be pushed down.
//
// Parameters:
//   schema    — "name:type,..." of the object's columns (required)
//   group     — comma-separated grouping specs (optional; absent means
//               one global group). CSV mode takes bare column names;
//               partials mode also accepts "substr(col,pos,len)" over
//               string columns (AggPushdownSpec::GroupParam rendering)
//   aggs      — comma-separated "<fn>:<column>" specs; count accepts "*"
//               as column (required). CSV mode allows sum/min/max/count
//               (avg does not merge as a single finalized value);
//               partials mode additionally allows avg, whose (sum,count)
//               state merges fine
//   selection — serialized SourceFilter applied before aggregating
//   output    — "csv" (default) or "partials"
//   input     — "text" or "batch" to pin the input decoder; absent means
//               sniff for SBT1 frames from an upstream output=batch csv
//               storlet
//
// Output, csv mode: rows "<group values...>,<agg values...>", one per
// group, sorted by raw group-key bytes; sum/count over integer columns
// stay integral. Output, partials mode: one SAG1 frame (sql/agg_wire.h)
// of typed group keys + mergeable AggStates, sorted by the driver's
// SerializeGroupKey. Both are *partial* results for one object/range;
// the compute side merges partials across requests with the AggState
// machinery in sql/aggregates.h.
class GroupAggStorlet : public Storlet {
 public:
  static constexpr char kName[] = "aggstorlet";

  std::string name() const override { return kName; }

  Status Invoke(StorletInputStream& input, StorletOutputStream& output,
                const StorletParams& params, StorletLogger& logger) override;

  static std::unique_ptr<Storlet> Make() {
    return std::make_unique<GroupAggStorlet>();
  }
};

}  // namespace scoop

#endif  // SCOOP_CSV_AGG_STORLET_H_
