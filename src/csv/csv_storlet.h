#ifndef SCOOP_CSV_CSV_STORLET_H_
#define SCOOP_CSV_CSV_STORLET_H_

#include <memory>
#include <string>

#include "storlets/storlet.h"

namespace scoop {

// The paper's CSVStorlet: streams locally-stored CSV data through the
// projection and selection filters Catalyst extracted, emitting only the
// useful rows and columns (§V-A).
//
// Parameters (all storlet parameters arrive lowercased):
//   schema     — "name:type,..." spec of the object's columns (required)
//   projection — comma-separated column names to keep, in output order;
//                absent/empty keeps every column
//   selection  — serialized SourceFilter s-expression; absent keeps all rows
//   limit      — stop after this many selection-surviving rows and stop
//                consuming input (LIMIT pushdown; sets "limit-hit"
//                metadata when the cap fired)
//
// Objects are stored without a header line; the schema always travels in
// the request metadata (the convention the data generator and Spark-CSV
// layer of this repository share).
//
// Row-only filtering takes a fast path that copies matching records
// verbatim, which is why row selectivity outperforms column selectivity
// in the paper's Fig. 5 — discarding a whole row is cheaper than
// re-concatenating a subset of its columns.
class CsvStorlet : public Storlet {
 public:
  static constexpr char kName[] = "csvstorlet";

  std::string name() const override { return kName; }

  Status Invoke(StorletInputStream& input, StorletOutputStream& output,
                const StorletParams& params, StorletLogger& logger) override;

  static std::unique_ptr<Storlet> Make() {
    return std::make_unique<CsvStorlet>();
  }
};

}  // namespace scoop

#endif  // SCOOP_CSV_CSV_STORLET_H_
