#ifndef SCOOP_CSV_ETL_STORLET_H_
#define SCOOP_CSV_ETL_STORLET_H_

#include <memory>
#include <string>

#include "storlets/storlet.h"

namespace scoop {

// ETL-on-upload storlet (paper §V-A): runs on the PUT data path, so raw
// sensor data is cleansed and reshaped once, at ingestion time, instead of
// by every Spark workload afterwards.
//
// Transformations, controlled by parameters:
//   schema          — "name:type,..." spec of the *incoming* columns
//                     (required)
//   trim            — "true": strip surrounding whitespace from fields
//                     (default true)
//   drop_malformed  — "true": drop rows whose field count mismatches the
//                     schema or whose numeric fields fail to parse
//                     (default true)
//   split_column    — name of a column to split into several columns
//   split_separator — separator used inside split_column (default ";")
//   split_names     — comma-separated names of the new columns (their
//                     count defines how many pieces are produced; missing
//                     pieces become empty fields)
//
// The storlet normalizes CRLF line endings and drops blank lines. The
// resulting schema is attached as response metadata ("schema").
class EtlStorlet : public Storlet {
 public:
  static constexpr char kName[] = "etlstorlet";

  std::string name() const override { return kName; }

  Status Invoke(StorletInputStream& input, StorletOutputStream& output,
                const StorletParams& params, StorletLogger& logger) override;

  static std::unique_ptr<Storlet> Make() {
    return std::make_unique<EtlStorlet>();
  }
};

}  // namespace scoop

#endif  // SCOOP_CSV_ETL_STORLET_H_
