#include "csv/etl_storlet.h"

#include "common/strings.h"
#include "csv/record_reader.h"
#include "sql/schema.h"

namespace scoop {

Status EtlStorlet::Invoke(StorletInputStream& input,
                          StorletOutputStream& output,
                          const StorletParams& params, StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("etlstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  auto get = [&params](const std::string& key, std::string fallback) {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  };
  bool trim = ToLower(get("trim", "true")) == "true";
  bool drop_malformed = ToLower(get("drop_malformed", "true")) == "true";

  int split_index = -1;
  char split_separator = ';';
  std::vector<std::string> split_names;
  std::string split_column = get("split_column", "");
  if (!split_column.empty()) {
    split_index = schema.IndexOf(split_column);
    if (split_index < 0) {
      return Status::NotFound("split_column not in schema: " + split_column);
    }
    std::string sep = get("split_separator", ";");
    if (sep.size() != 1) {
      return Status::InvalidArgument("split_separator must be one character");
    }
    split_separator = sep[0];
    split_names = SplitCopy(get("split_names", ""), ',');
    if (split_names.empty() || split_names[0].empty()) {
      return Status::InvalidArgument("split_names required with split_column");
    }
  }

  // Output schema: original columns with the split column replaced by the
  // new ones (typed as strings; downstream schemas refine them).
  std::vector<Column> out_columns;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (static_cast<int>(i) == split_index) {
      for (const std::string& name : split_names) {
        out_columns.push_back(Column{name, ColumnType::kString});
      }
    } else {
      out_columns.push_back(schema.column(i));
    }
  }
  Schema out_schema((std::vector<Column>(out_columns)));

  CsvRecordParser parser;
  std::string scratch;
  std::vector<std::string_view> out_fields;
  std::vector<std::string> trimmed;
  int64_t rows_in = 0;
  int64_t rows_dropped = 0;
  while (auto line = input.ReadLine()) {
    std::string_view record = *line;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    if (Trim(record).empty()) continue;
    ++rows_in;
    const std::vector<std::string_view>& fields = parser.Parse(record);
    if (fields.size() != schema.size()) {
      ++rows_dropped;
      if (drop_malformed) continue;
    }
    // Validate numeric fields when dropping malformed rows.
    bool malformed = fields.size() != schema.size();
    if (!malformed && drop_malformed) {
      for (size_t i = 0; i < fields.size(); ++i) {
        std::string_view field = trim ? Trim(fields[i]) : fields[i];
        if (field.empty()) continue;  // nulls are fine
        if (schema.column(i).type == ColumnType::kInt64 &&
            !ParseInt64(field).ok()) {
          malformed = true;
          break;
        }
        if (schema.column(i).type == ColumnType::kDouble &&
            !ParseDouble(field).ok()) {
          malformed = true;
          break;
        }
      }
    }
    if (malformed) {
      ++rows_dropped;
      continue;
    }
    trimmed.clear();
    out_fields.clear();
    // Two passes: first materialize owned strings (trim/split), then build
    // views — a vector<string> never invalidates its elements' buffers on
    // push_back of new elements only if reserved; reserve generously.
    trimmed.reserve(fields.size() + split_names.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      std::string_view field = trim ? Trim(fields[i]) : fields[i];
      if (static_cast<int>(i) == split_index) {
        std::vector<std::string_view> pieces = Split(field, split_separator);
        for (size_t p = 0; p < split_names.size(); ++p) {
          trimmed.emplace_back(p < pieces.size()
                                   ? (trim ? Trim(pieces[p]) : pieces[p])
                                   : std::string_view());
        }
      } else {
        trimmed.emplace_back(field);
      }
    }
    for (const std::string& s : trimmed) out_fields.push_back(s);
    scratch.clear();
    WriteCsvRecord(out_fields, &scratch);
    output.Write(scratch);
  }
  logger.Emit(StrFormat("etlstorlet: %lld rows in, %lld dropped",
                        static_cast<long long>(rows_in),
                        static_cast<long long>(rows_dropped)));
  output.SetMetadata("schema", out_schema.ToSpec());
  output.SetMetadata("rows-dropped", std::to_string(rows_dropped));
  return Status::OK();
}

}  // namespace scoop
