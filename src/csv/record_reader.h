#ifndef SCOOP_CSV_RECORD_READER_H_
#define SCOOP_CSV_RECORD_READER_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/record_batch.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace scoop {

class CsvBatchReader;

// Splits one CSV record (a line without its newline) into fields.
// Dialect: comma separator, RFC-4180 double-quote quoting with "" escapes.
// Embedded newlines inside quoted fields are NOT supported — the
// byte-range partitioning protocol (Hadoop text-input splits) requires
// records to be newline-delimited, exactly as in the paper's datasets.
class CsvRecordParser {
 public:
  // Returned views are valid until the next Parse call. The fast path
  // (no quotes anywhere) allocates nothing.
  const std::vector<std::string_view>& Parse(std::string_view line);

 private:
  std::vector<std::string_view> fields_;
  std::deque<std::string> owned_;  // unescaped quoted fields
};

// Streams typed rows out of a CSV buffer using `schema` for field types.
// Rows with a field count different from the schema are surfaced through
// the malformed counter and skipped (Spark-CSV permissive mode).
//
// DEPRECATED as an engine: since the columnar refactor this is a thin
// adapter over CsvBatchReader (csv/batch_reader.h) — it scans a batch at
// a time and hands out materialized rows. Behaviour and counters are
// unchanged; new code should consume RecordBatches directly, and the
// adapter will be retired once the remaining row-based callers migrate.
class CsvRowReader {
 public:
  CsvRowReader(std::string_view data, const Schema* schema);
  ~CsvRowReader();

  // Fetches the next row into `row`; false at end of input.
  bool Next(Row* row);

  int64_t malformed_rows() const;
  int64_t rows_read() const { return rows_; }

 private:
  std::unique_ptr<CsvBatchReader> reader_;
  RecordBatch batch_;
  int64_t cursor_ = 0;
  int64_t rows_ = 0;
};

// The original row-at-a-time scanner, kept verbatim as the reference
// engine: the batch/row equivalence tests and bench/ablation_columnar's
// "row" arm measure against it. Not used on any production path.
class ScalarRowReader {
 public:
  ScalarRowReader(std::string_view data, const Schema* schema)
      : data_(data), schema_(schema) {}

  // Fetches the next row into `row`; false at end of input.
  bool Next(Row* row);

  int64_t malformed_rows() const { return malformed_; }
  int64_t rows_read() const { return rows_; }

 private:
  std::string_view data_;
  const Schema* schema_;
  size_t pos_ = 0;
  int64_t malformed_ = 0;
  int64_t rows_ = 0;
  CsvRecordParser parser_;
};

// Appends `fields` to `out` as one CSV record with a trailing newline,
// quoting fields that need it.
void WriteCsvRecord(const std::vector<std::string_view>& fields,
                    std::string* out);

// Renders a typed row as a CSV record.
void WriteCsvRow(const Row& row, std::string* out);

}  // namespace scoop

#endif  // SCOOP_CSV_RECORD_READER_H_
