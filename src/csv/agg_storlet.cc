#include "csv/agg_storlet.h"

#include <map>

#include "common/strings.h"
#include "csv/record_reader.h"
#include "sql/aggregates.h"
#include "sql/source_filter.h"

namespace scoop {

Status GroupAggStorlet::Invoke(StorletInputStream& input,
                               StorletOutputStream& output,
                               const StorletParams& params,
                               StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("aggstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  std::vector<int> group_indices;
  auto group_it = params.find("group");
  if (group_it != params.end() && !Trim(group_it->second).empty()) {
    for (std::string_view name : Split(group_it->second, ',')) {
      int idx = schema.IndexOf(Trim(name));
      if (idx < 0) {
        return Status::NotFound("group column not in schema: " +
                                std::string(Trim(name)));
      }
      group_indices.push_back(idx);
    }
  }

  struct AggSpec {
    AggKind kind;
    int column_index;  // -1 for count(*)
    ColumnType type;
  };
  std::vector<AggSpec> specs;
  auto aggs_it = params.find("aggs");
  if (aggs_it == params.end() || Trim(aggs_it->second).empty()) {
    return Status::InvalidArgument("aggstorlet requires an 'aggs' parameter");
  }
  for (std::string_view part : Split(aggs_it->second, ',')) {
    part = Trim(part);
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("bad agg spec: " + std::string(part));
    }
    AggSpec spec;
    SCOOP_ASSIGN_OR_RETURN(spec.kind, AggKindFromName(part.substr(0, colon)));
    if (spec.kind == AggKind::kAvg || spec.kind == AggKind::kFirstValue) {
      return Status::InvalidArgument(
          "aggstorlet supports sum/min/max/count (avg/first_value do not "
          "merge as single partials)");
    }
    std::string_view column = Trim(part.substr(colon + 1));
    if (column == "*") {
      if (spec.kind != AggKind::kCount) {
        return Status::InvalidArgument("'*' is only valid with count");
      }
      spec.column_index = -1;
      spec.type = ColumnType::kInt64;
    } else {
      spec.column_index = schema.IndexOf(column);
      if (spec.column_index < 0) {
        return Status::NotFound("agg column not in schema: " +
                                std::string(column));
      }
      spec.type = schema.column(static_cast<size_t>(spec.column_index)).type;
    }
    specs.push_back(spec);
  }

  SourceFilter selection = SourceFilter::True();
  auto selection_it = params.find("selection");
  if (selection_it != params.end() && !Trim(selection_it->second).empty()) {
    SCOOP_ASSIGN_OR_RETURN(selection,
                           SourceFilter::Parse(selection_it->second));
  }

  // Group map keyed by the rendered group fields (std::map: sorted output).
  struct Entry {
    std::vector<std::string> key_fields;
    std::vector<AggState> states;
  };
  std::map<std::string, Entry> groups;

  CsvRecordParser parser;
  int64_t rows_in = 0;
  while (auto line = input.ReadLine()) {
    std::string_view record = *line;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    if (record.empty()) continue;
    const std::vector<std::string_view>& fields = parser.Parse(record);
    if (fields.size() != schema.size()) continue;
    if (!selection.Matches(fields, schema)) continue;
    ++rows_in;

    std::string key;
    for (int idx : group_indices) {
      key.append(fields[static_cast<size_t>(idx)]);
      key.push_back('\x1f');
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Entry& entry = it->second;
    if (inserted) {
      for (int idx : group_indices) {
        entry.key_fields.emplace_back(fields[static_cast<size_t>(idx)]);
      }
      entry.states.resize(specs.size());
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      const AggSpec& spec = specs[i];
      if (spec.column_index < 0) {
        entry.states[i].Update(AggKind::kCount, Value(static_cast<int64_t>(1)));
      } else {
        entry.states[i].Update(
            spec.kind,
            Value::FromField(fields[static_cast<size_t>(spec.column_index)],
                             spec.type));
      }
    }
  }

  std::string scratch;
  std::vector<std::string> rendered;
  std::vector<std::string_view> views;
  for (const auto& [key, entry] : groups) {
    rendered.clear();
    views.clear();
    for (const std::string& field : entry.key_fields) rendered.push_back(field);
    for (size_t i = 0; i < specs.size(); ++i) {
      rendered.push_back(entry.states[i].Final(specs[i].kind).ToString());
    }
    for (const std::string& s : rendered) views.push_back(s);
    scratch.clear();
    WriteCsvRecord(views, &scratch);
    output.Write(scratch);
  }
  logger.Emit(StrFormat("aggstorlet: %lld rows -> %zu groups",
                        static_cast<long long>(rows_in), groups.size()));
  output.SetMetadata("groups", std::to_string(groups.size()));
  return Status::OK();
}

}  // namespace scoop
