#include "csv/agg_storlet.h"

#include <map>
#include <numeric>

#include "columnar/batch_wire.h"
#include "columnar/record_batch.h"
#include "common/strings.h"
#include "csv/batch_reader.h"
#include "csv/record_reader.h"
#include "sql/aggregates.h"
#include "sql/source_filter.h"

namespace scoop {

Status GroupAggStorlet::Invoke(StorletInputStream& input,
                               StorletOutputStream& output,
                               const StorletParams& params,
                               StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("aggstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  std::vector<int> group_indices;
  auto group_it = params.find("group");
  if (group_it != params.end() && !Trim(group_it->second).empty()) {
    for (std::string_view name : Split(group_it->second, ',')) {
      int idx = schema.IndexOf(Trim(name));
      if (idx < 0) {
        return Status::NotFound("group column not in schema: " +
                                std::string(Trim(name)));
      }
      group_indices.push_back(idx);
    }
  }

  struct AggSpec {
    AggKind kind;
    int column_index;  // -1 for count(*)
    ColumnType type;
  };
  std::vector<AggSpec> specs;
  auto aggs_it = params.find("aggs");
  if (aggs_it == params.end() || Trim(aggs_it->second).empty()) {
    return Status::InvalidArgument("aggstorlet requires an 'aggs' parameter");
  }
  for (std::string_view part : Split(aggs_it->second, ',')) {
    part = Trim(part);
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("bad agg spec: " + std::string(part));
    }
    AggSpec spec;
    SCOOP_ASSIGN_OR_RETURN(spec.kind, AggKindFromName(part.substr(0, colon)));
    if (spec.kind == AggKind::kAvg || spec.kind == AggKind::kFirstValue) {
      return Status::InvalidArgument(
          "aggstorlet supports sum/min/max/count (avg/first_value do not "
          "merge as single partials)");
    }
    std::string_view column = Trim(part.substr(colon + 1));
    if (column == "*") {
      if (spec.kind != AggKind::kCount) {
        return Status::InvalidArgument("'*' is only valid with count");
      }
      spec.column_index = -1;
      spec.type = ColumnType::kInt64;
    } else {
      spec.column_index = schema.IndexOf(column);
      if (spec.column_index < 0) {
        return Status::NotFound("agg column not in schema: " +
                                std::string(column));
      }
      spec.type = schema.column(static_cast<size_t>(spec.column_index)).type;
    }
    specs.push_back(spec);
  }

  SourceFilter selection = SourceFilter::True();
  auto selection_it = params.find("selection");
  if (selection_it != params.end() && !Trim(selection_it->second).empty()) {
    SCOOP_ASSIGN_OR_RETURN(selection,
                           SourceFilter::Parse(selection_it->second));
  }
  bool has_selection = !selection.IsTrue();

  // Group map keyed by the rendered group fields (std::map: sorted output).
  struct Entry {
    std::vector<std::string> key_fields;
    std::vector<AggState> states;
  };
  std::map<std::string, Entry> groups;
  int64_t rows_in = 0;

  // Folds one record (raw fields, schema order) into the group map.
  auto accumulate = [&](const std::string_view* fields) {
    std::string key;
    for (int idx : group_indices) {
      key.append(fields[static_cast<size_t>(idx)]);
      key.push_back('\x1f');
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Entry& entry = it->second;
    if (inserted) {
      for (int idx : group_indices) {
        entry.key_fields.emplace_back(fields[static_cast<size_t>(idx)]);
      }
      entry.states.resize(specs.size());
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      const AggSpec& spec = specs[i];
      if (spec.column_index < 0) {
        entry.states[i].Update(AggKind::kCount, Value(static_cast<int64_t>(1)));
      } else {
        entry.states[i].Update(
            spec.kind,
            Value::FromField(fields[static_cast<size_t>(spec.column_index)],
                             spec.type));
      }
    }
  };

  // Sniff the input: an upstream csv storlet invoked with output=batch
  // sends length-prefixed RecordBatch frames instead of CSV text.
  char magic[4];
  size_t sniffed = input.Peek(magic, sizeof(magic));
  bool wire_input =
      LooksLikeBatchWire(std::string_view(magic, sniffed));

  if (wire_input) {
    // Wire frames carry raw string fields under their own (possibly
    // projected) schema; map this storlet's column positions by name so
    // the record view handed to accumulate/selection stays schema-shaped.
    BatchWireReader wire;
    RecordBatch batch;
    std::vector<char> chunk(64 * 1024);
    std::vector<int> wire_idx;          // schema position -> wire column
    std::vector<std::string> rendered;  // scratch for non-string columns
    rendered.reserve(schema.size());    // views into it must not relocate
    std::vector<std::string_view> fields(schema.size());
    std::vector<uint32_t> one;
    for (;;) {
      SCOOP_ASSIGN_OR_RETURN(bool got_batch, wire.Next(&batch));
      if (!got_batch) {
        size_t got = input.Read(chunk.data(), chunk.size());
        if (got == 0) break;
        wire.Feed(std::string_view(chunk.data(), got));
        continue;
      }
      wire_idx.assign(schema.size(), -1);
      for (size_t i = 0; i < schema.size(); ++i) {
        wire_idx[i] = batch.schema().IndexOf(schema.column(i).name);
      }
      for (int64_t r = 0; r < batch.num_rows(); ++r) {
        rendered.clear();
        for (size_t i = 0; i < schema.size(); ++i) {
          int wc = wire_idx[i];
          if (wc < 0) {
            fields[i] = std::string_view();  // absent column reads as null
            continue;
          }
          const ColumnVector& col = batch.column(wc);
          if (col.type() == ColumnType::kString) {
            fields[i] = col.is_null(r) ? std::string_view() : col.StringAt(r);
          } else {
            rendered.push_back(col.GetValue(r).ToString());
            fields[i] = rendered.back();
          }
        }
        if (has_selection) {
          one.assign(1, 0);
          selection.MatchRows(fields.data(), fields.size(), schema, &one);
          if (one.empty()) continue;
        }
        ++rows_in;
        accumulate(fields.data());
      }
    }
    if (wire.buffered_bytes() > 0) {
      return Status::InvalidArgument(
          "aggstorlet: truncated batch frame at end of input");
    }
  } else {
    // Text input: batched structural scan. rows_in counts selected rows
    // only, exactly like the historical per-line loop.
    CsvStreamBatcher batcher(&input, schema.size());
    RawRecordBatch raw;
    std::vector<uint32_t> selected;
    while (batcher.Next(&raw)) {
      selected.resize(static_cast<size_t>(raw.num_rows));
      std::iota(selected.begin(), selected.end(), 0u);
      if (has_selection) {
        selection.MatchRows(raw.fields.data(), raw.num_fields, schema,
                            &selected);
      }
      rows_in += static_cast<int64_t>(selected.size());
      for (uint32_t r : selected) {
        accumulate(raw.fields.data() + r * raw.num_fields);
      }
    }
  }

  std::string scratch;
  std::vector<std::string> rendered;
  std::vector<std::string_view> views;
  for (const auto& [key, entry] : groups) {
    rendered.clear();
    views.clear();
    for (const std::string& field : entry.key_fields) rendered.push_back(field);
    for (size_t i = 0; i < specs.size(); ++i) {
      rendered.push_back(entry.states[i].Final(specs[i].kind).ToString());
    }
    for (const std::string& s : rendered) views.push_back(s);
    scratch.clear();
    WriteCsvRecord(views, &scratch);
    output.Write(scratch);
  }
  logger.Emit(StrFormat("aggstorlet: %lld rows -> %zu groups%s",
                        static_cast<long long>(rows_in), groups.size(),
                        wire_input ? " (batch frames in)" : ""));
  output.SetMetadata("groups", std::to_string(groups.size()));
  return Status::OK();
}

}  // namespace scoop
