#include "csv/agg_storlet.h"

#include <cstdlib>
#include <map>
#include <numeric>

#include "columnar/batch_wire.h"
#include "columnar/record_batch.h"
#include "common/strings.h"
#include "csv/batch_reader.h"
#include "csv/record_reader.h"
#include "sql/agg_wire.h"
#include "sql/aggregates.h"
#include "sql/expr_eval.h"
#include "sql/source_filter.h"

namespace scoop {

namespace {

// One resolved group-key expression of the partials mode: a bare column
// or substr(string-column, pos, len).
struct GroupKeySpec {
  int column_index = -1;
  ColumnType type = ColumnType::kString;
  bool is_substr = false;
  int64_t pos = 0;
  int64_t len = 0;
};

Result<GroupKeySpec> ResolveGroupSpec(const std::string& spec,
                                      const Schema& schema) {
  GroupKeySpec out;
  std::string column = spec;
  if (spec.rfind("substr(", 0) == 0 && spec.back() == ')') {
    std::vector<std::string_view> parts =
        Split(std::string_view(spec).substr(7, spec.size() - 8), ',');
    if (parts.size() != 3) {
      return Status::InvalidArgument("aggstorlet: bad group spec: " + spec);
    }
    char* end = nullptr;
    std::string pos_str(parts[1]), len_str(parts[2]);
    out.pos = std::strtoll(pos_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("aggstorlet: bad group spec: " + spec);
    }
    out.len = std::strtoll(len_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("aggstorlet: bad group spec: " + spec);
    }
    out.is_substr = true;
    column = std::string(parts[0]);
  }
  out.column_index = schema.IndexOf(column);
  if (out.column_index < 0) {
    return Status::NotFound("group column not in schema: " + column);
  }
  out.type = schema.column(static_cast<size_t>(out.column_index)).type;
  if (out.is_substr && out.type != ColumnType::kString) {
    return Status::InvalidArgument(
        "aggstorlet: substr group key requires a string column: " + spec);
  }
  return out;
}

}  // namespace

Status GroupAggStorlet::Invoke(StorletInputStream& input,
                               StorletOutputStream& output,
                               const StorletParams& params,
                               StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("aggstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  // output=partials switches from finalized CSV rows to one SAG1 frame
  // of mergeable AggStates (sql/agg_wire.h) with typed group keys — the
  // aggregate-pushdown wire the driver merges with AggState::Merge.
  bool partials_mode = false;
  auto output_it = params.find("output");
  if (output_it != params.end() && !Trim(output_it->second).empty()) {
    std::string_view mode = Trim(output_it->second);
    if (mode == "partials") {
      partials_mode = true;
    } else if (mode != "csv") {
      return Status::InvalidArgument("aggstorlet: unknown output mode: " +
                                     std::string(mode));
    }
  }

  std::string group_param;
  auto group_it = params.find("group");
  if (group_it != params.end()) group_param = Trim(group_it->second);
  auto aggs_it = params.find("aggs");
  if (aggs_it == params.end() || Trim(aggs_it->second).empty()) {
    return Status::InvalidArgument("aggstorlet requires an 'aggs' parameter");
  }

  struct AggSpec {
    AggKind kind;
    int column_index;  // -1 for count(*)
    ColumnType type;
  };
  std::vector<AggSpec> specs;
  std::vector<GroupKeySpec> key_specs;   // partials mode
  std::vector<int> group_indices;        // csv mode
  std::vector<AggKind> wire_kinds;       // partials mode frame header

  if (partials_mode) {
    SCOOP_ASSIGN_OR_RETURN(
        AggPushdownSpec pushed,
        ParseAggPushdownSpec(group_param, Trim(aggs_it->second)));
    for (const std::string& g : pushed.group_specs) {
      SCOOP_ASSIGN_OR_RETURN(GroupKeySpec ks, ResolveGroupSpec(g, schema));
      key_specs.push_back(ks);
    }
    for (size_t i = 0; i < pushed.agg_kinds.size(); ++i) {
      AggSpec spec;
      spec.kind = pushed.agg_kinds[i];
      if (pushed.agg_columns[i] == "*") {
        spec.column_index = -1;
        spec.type = ColumnType::kInt64;
      } else {
        spec.column_index = schema.IndexOf(pushed.agg_columns[i]);
        if (spec.column_index < 0) {
          return Status::NotFound("agg column not in schema: " +
                                  pushed.agg_columns[i]);
        }
        spec.type =
            schema.column(static_cast<size_t>(spec.column_index)).type;
      }
      specs.push_back(spec);
    }
    wire_kinds = std::move(pushed.agg_kinds);
  } else {
    if (!group_param.empty()) {
      for (std::string_view name : Split(group_param, ',')) {
        int idx = schema.IndexOf(Trim(name));
        if (idx < 0) {
          return Status::NotFound("group column not in schema: " +
                                  std::string(Trim(name)));
        }
        group_indices.push_back(idx);
      }
    }
    for (std::string_view part : Split(aggs_it->second, ',')) {
      part = Trim(part);
      size_t colon = part.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("bad agg spec: " + std::string(part));
      }
      AggSpec spec;
      SCOOP_ASSIGN_OR_RETURN(spec.kind,
                             AggKindFromName(part.substr(0, colon)));
      if (spec.kind == AggKind::kAvg || spec.kind == AggKind::kFirstValue) {
        return Status::InvalidArgument(
            "aggstorlet supports sum/min/max/count in csv output mode "
            "(avg/first_value do not merge as single finalized values)");
      }
      std::string_view column = Trim(part.substr(colon + 1));
      if (column == "*") {
        if (spec.kind != AggKind::kCount) {
          return Status::InvalidArgument("'*' is only valid with count");
        }
        spec.column_index = -1;
        spec.type = ColumnType::kInt64;
      } else {
        spec.column_index = schema.IndexOf(column);
        if (spec.column_index < 0) {
          return Status::NotFound("agg column not in schema: " +
                                  std::string(column));
        }
        spec.type =
            schema.column(static_cast<size_t>(spec.column_index)).type;
      }
      specs.push_back(spec);
    }
  }

  SourceFilter selection = SourceFilter::True();
  auto selection_it = params.find("selection");
  if (selection_it != params.end() && !Trim(selection_it->second).empty()) {
    SCOOP_ASSIGN_OR_RETURN(selection,
                           SourceFilter::Parse(selection_it->second));
  }
  bool has_selection = !selection.IsTrue();

  // Group map keyed by the serialized group key (std::map: sorted,
  // deterministic output order).
  struct Entry {
    std::vector<std::string> key_fields;  // csv mode: raw field bytes
    Row key_values;                       // partials mode: typed values
    std::vector<AggState> states;
  };
  std::map<std::string, Entry> groups;
  int64_t rows_in = 0;

  // Folds one record (raw fields, schema order) into the group map. The
  // partials mode computes typed keys with Value::FromField/SqlSubstring
  // — the exact evaluation the driver executor runs — so group identity
  // never depends on raw field spelling ("1.0" vs "1.00").
  auto accumulate = [&](const std::string_view* fields) {
    std::string key;
    Row key_values;
    if (partials_mode) {
      key_values.reserve(key_specs.size());
      for (const GroupKeySpec& ks : key_specs) {
        std::string_view field = fields[static_cast<size_t>(ks.column_index)];
        if (ks.is_substr) {
          // Null (empty field) propagates through substr, like EvalExpr.
          key_values.push_back(
              field.empty()
                  ? Value::Null()
                  : Value(SqlSubstring(std::string(field), ks.pos, ks.len)));
        } else {
          key_values.push_back(Value::FromField(field, ks.type));
        }
      }
      key = SerializeGroupKey(key_values);
    } else {
      for (int idx : group_indices) {
        key.append(fields[static_cast<size_t>(idx)]);
        key.push_back('\x1f');
      }
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Entry& entry = it->second;
    if (inserted) {
      if (partials_mode) {
        entry.key_values = std::move(key_values);
      } else {
        for (int idx : group_indices) {
          entry.key_fields.emplace_back(fields[static_cast<size_t>(idx)]);
        }
      }
      entry.states.resize(specs.size());
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      const AggSpec& spec = specs[i];
      if (spec.column_index < 0) {
        entry.states[i].Update(AggKind::kCount,
                               Value(static_cast<int64_t>(1)));
      } else {
        entry.states[i].Update(
            spec.kind,
            Value::FromField(fields[static_cast<size_t>(spec.column_index)],
                             spec.type));
      }
    }
  };

  // Input format: an explicit input=batch/text parameter wins; otherwise
  // sniff whether an upstream csv storlet invoked with output=batch sends
  // length-prefixed RecordBatch frames instead of CSV text. The sniff
  // reads a full header's worth of bytes so LooksLikeBatchWire can
  // corroborate the magic against the frame length fields — a CSV record
  // that merely *starts* with "SBT1" must not select the wire decoder.
  bool wire_input;
  auto input_it = params.find("input");
  if (input_it != params.end() && !Trim(input_it->second).empty()) {
    std::string_view mode = Trim(input_it->second);
    if (mode == "batch") {
      wire_input = true;
    } else if (mode == "text") {
      wire_input = false;
    } else {
      return Status::InvalidArgument("aggstorlet: unknown input mode: " +
                                     std::string(mode));
    }
  } else {
    char header[16];
    size_t sniffed = input.Peek(header, sizeof(header));
    wire_input = LooksLikeBatchWire(std::string_view(header, sniffed));
  }

  if (wire_input) {
    // Wire frames carry raw string fields under their own (possibly
    // projected) schema; map this storlet's column positions by name so
    // the record view handed to accumulate/selection stays schema-shaped.
    BatchWireReader wire;
    RecordBatch batch;
    std::vector<char> chunk(64 * 1024);
    std::vector<int> wire_idx;          // schema position -> wire column
    std::vector<std::string> rendered;  // scratch for non-string columns
    rendered.reserve(schema.size());    // views into it must not relocate
    std::vector<std::string_view> fields(schema.size());
    std::vector<uint32_t> one;
    for (;;) {
      SCOOP_ASSIGN_OR_RETURN(bool got_batch, wire.Next(&batch));
      if (!got_batch) {
        size_t got = input.Read(chunk.data(), chunk.size());
        if (got == 0) break;
        wire.Feed(std::string_view(chunk.data(), got));
        continue;
      }
      wire_idx.assign(schema.size(), -1);
      for (size_t i = 0; i < schema.size(); ++i) {
        wire_idx[i] = batch.schema().IndexOf(schema.column(i).name);
      }
      for (int64_t r = 0; r < batch.num_rows(); ++r) {
        rendered.clear();
        for (size_t i = 0; i < schema.size(); ++i) {
          int wc = wire_idx[i];
          if (wc < 0) {
            fields[i] = std::string_view();  // absent column reads as null
            continue;
          }
          const ColumnVector& col = batch.column(wc);
          if (col.type() == ColumnType::kString) {
            fields[i] = col.is_null(r) ? std::string_view() : col.StringAt(r);
          } else {
            rendered.push_back(col.GetValue(r).ToString());
            fields[i] = rendered.back();
          }
        }
        if (has_selection) {
          one.assign(1, 0);
          selection.MatchRows(fields.data(), fields.size(), schema, &one);
          if (one.empty()) continue;
        }
        ++rows_in;
        accumulate(fields.data());
      }
    }
    if (wire.buffered_bytes() > 0) {
      return Status::InvalidArgument(
          "aggstorlet: truncated batch frame at end of input");
    }
  } else {
    // Text input: batched structural scan. rows_in counts selected rows
    // only, exactly like the historical per-line loop.
    CsvStreamBatcher batcher(&input, schema.size());
    RawRecordBatch raw;
    std::vector<uint32_t> selected;
    while (batcher.Next(&raw)) {
      selected.resize(static_cast<size_t>(raw.num_rows));
      std::iota(selected.begin(), selected.end(), 0u);
      if (has_selection) {
        selection.MatchRows(raw.fields.data(), raw.num_fields, schema,
                            &selected);
      }
      rows_in += static_cast<int64_t>(selected.size());
      for (uint32_t r : selected) {
        accumulate(raw.fields.data() + r * raw.num_fields);
      }
    }
  }

  if (partials_mode) {
    AggPartialFrame frame;
    frame.agg_kinds = std::move(wire_kinds);
    frame.rows = rows_in;
    frame.groups.reserve(groups.size());
    for (auto& [key, entry] : groups) {
      AggPartialGroup group;
      group.key_values = std::move(entry.key_values);
      group.states = std::move(entry.states);
      frame.groups.push_back(std::move(group));
    }
    std::string encoded;
    AppendAggPartialFrame(frame, &encoded);
    output.Write(encoded);
  } else {
    std::string scratch;
    std::vector<std::string> rendered;
    std::vector<std::string_view> views;
    for (const auto& [key, entry] : groups) {
      rendered.clear();
      views.clear();
      for (const std::string& field : entry.key_fields) {
        rendered.push_back(field);
      }
      for (size_t i = 0; i < specs.size(); ++i) {
        rendered.push_back(entry.states[i].Final(specs[i].kind).ToString());
      }
      for (const std::string& s : rendered) views.push_back(s);
      scratch.clear();
      WriteCsvRecord(views, &scratch);
      output.Write(scratch);
    }
  }
  logger.Emit(StrFormat("aggstorlet: %lld rows -> %zu groups%s%s",
                        static_cast<long long>(rows_in), groups.size(),
                        wire_input ? " (batch frames in)" : "",
                        partials_mode ? " (partial states out)" : ""));
  output.SetMetadata("groups", std::to_string(groups.size()));
  return Status::OK();
}

}  // namespace scoop
