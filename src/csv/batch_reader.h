// The vectorized CSV scan path: one structural SIMD/SWAR pass finds
// every delimiter, then fields are parsed straight into column vectors —
// no per-row Row allocation, no per-field find(). Semantics are
// bit-compatible with the row-at-a-time readers in record_reader.h
// (blank-line skipping, CR stripping, quoted-field unescaping, malformed
// accounting); the equivalence suite in tests/csv_test.cc holds the two
// engines together.
#ifndef SCOOP_CSV_BATCH_READER_H_
#define SCOOP_CSV_BATCH_READER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/record_batch.h"
#include "columnar/schema.h"

namespace scoop {

class StorletInputStream;

struct CsvBatchOptions {
  int64_t max_batch_rows = kDefaultBatchRows;
  // Dictionary-encode low-cardinality string columns while building
  // typed batches.
  bool dictionary = true;
  // Stream scanning (CsvStreamBatcher): bytes buffered per scan window.
  // Windows are always cut at record boundaries, so this only bounds
  // memory, never splits a record.
  size_t window_bytes = 256 * 1024;
};

// Walks a fully-buffered window using the structural scan, yielding one
// record at a time as unescaped field views. Blank lines are skipped,
// trailing '\r' stripped, and records containing quotes take an
// unescaping path that mirrors CsvRecordParser exactly (the equivalence
// tests pin the two together).
class CsvRecordCursor {
 public:
  explicit CsvRecordCursor(std::string_view data);

  // Advances to the next non-empty record; false at end of window.
  bool Advance();

  // Field views are valid for the cursor's lifetime (unescaped quoted
  // fields live in a cursor-owned arena, plain fields in the window).
  const std::vector<std::string_view>& fields() const { return fields_; }
  // The CR-stripped raw record bytes (for verbatim pass-through).
  std::string_view record() const { return record_; }

 private:
  void ParseQuoted(std::string_view line);

  std::string_view data_;
  std::vector<uint32_t> structural_;  // tagged offsets, see columnar/simd.h
  size_t token_ = 0;                  // next structural token
  size_t pos_ = 0;                    // start of next record
  std::string_view record_;
  std::vector<std::string_view> fields_;
  std::vector<uint32_t> commas_;     // scratch: comma offsets of one record
  std::deque<std::string> owned_;    // unescaped quoted fields, per window
};

// Scan statistics shared by the batch readers. `malformed_rows` counts
// field-count mismatches (skipped), exactly like CsvRowReader.
struct CsvScanStats {
  int64_t rows_read = 0;
  int64_t malformed_rows = 0;
  int64_t batches = 0;
  uint64_t scanned_bytes = 0;
};

// Streams typed RecordBatches out of a fully-buffered CSV object slice.
class CsvBatchReader {
 public:
  CsvBatchReader(std::string_view data, const Schema* schema,
                 CsvBatchOptions options = CsvBatchOptions());

  // Fills `batch` with up to max_batch_rows typed rows; false at EOF.
  bool Next(RecordBatch* batch);

  const CsvScanStats& stats() const { return stats_; }

 private:
  const Schema* schema_;
  CsvBatchOptions options_;
  CsvRecordCursor cursor_;
  CsvScanStats stats_;
};

// One scanned batch of raw (untyped) records for the storlet filters:
// unescaped field views plus the original record bytes.
struct RawRecordBatch {
  int64_t num_rows = 0;
  size_t num_fields = 0;
  // Row-major: fields[row * num_fields + col].
  std::vector<std::string_view> fields;
  // CR-stripped original record bytes, for verbatim selection output.
  std::vector<std::string_view> records;
};

// Batch scanning over a pull-based storlet input stream with a bounded
// window: bytes are buffered up to window_bytes, the window is cut at the
// last complete record, and the tail carries into the next window — so
// records (including quoted fields) are never split however the
// underlying ByteStream re-chunks the transfer.
class CsvStreamBatcher {
 public:
  // `input` is borrowed and must outlive the batcher. `num_fields` is
  // the schema arity used for malformed classification.
  CsvStreamBatcher(StorletInputStream* input, size_t num_fields,
                   CsvBatchOptions options = CsvBatchOptions());

  // Fills `batch` with up to max_batch_rows well-formed records; false
  // at EOF. Views are valid until the next call.
  bool Next(RawRecordBatch* batch);

  // Cumulative counters across all batches so far.
  int64_t malformed_rows() const { return malformed_; }
  // Non-empty records seen, malformed included — the storlets' rows-in.
  int64_t records_seen() const { return records_seen_; }

 private:
  // Loads the next window into buffer_ and rebuilds the cursor. False
  // when the stream is exhausted.
  bool Refill();

  StorletInputStream* input_;
  size_t num_fields_;
  CsvBatchOptions options_;
  std::string buffer_;  // current window
  std::string carry_;   // partial trailing record awaiting the next window
  std::unique_ptr<CsvRecordCursor> cursor_;
  bool eof_ = false;
  int64_t malformed_ = 0;
  int64_t records_seen_ = 0;
};

}  // namespace scoop

#endif  // SCOOP_CSV_BATCH_READER_H_
