#include "csv/record_reader.h"

#include "common/strings.h"
#include "csv/batch_reader.h"

namespace scoop {

const std::vector<std::string_view>& CsvRecordParser::Parse(
    std::string_view line) {
  fields_.clear();
  owned_.clear();
  if (line.find('"') == std::string_view::npos) {
    // Fast path: plain splitting, zero copies.
    size_t start = 0;
    while (true) {
      size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) {
        fields_.push_back(line.substr(start));
        break;
      }
      fields_.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    return fields_;
  }
  // Quoted path.
  size_t i = 0;
  while (true) {
    if (i < line.size() && line[i] == '"') {
      // Quoted field: unescape "" into ".
      owned_.emplace_back();
      std::string& field = owned_.back();
      ++i;
      while (i < line.size()) {
        char c = line[i++];
        if (c == '"') {
          if (i < line.size() && line[i] == '"') {
            field.push_back('"');
            ++i;
          } else {
            break;
          }
        } else {
          field.push_back(c);
        }
      }
      fields_.push_back(field);
      // Skip to the next separator.
      while (i < line.size() && line[i] != ',') ++i;
    } else {
      size_t comma = line.find(',', i);
      size_t end = comma == std::string_view::npos ? line.size() : comma;
      fields_.push_back(line.substr(i, end - i));
      i = end;
    }
    if (i >= line.size()) break;
    ++i;  // consume ','
    if (i == line.size()) {
      // Trailing comma: final empty field.
      fields_.push_back(std::string_view());
      break;
    }
  }
  return fields_;
}

CsvRowReader::CsvRowReader(std::string_view data, const Schema* schema) {
  // Rows are materialized immediately, so dictionary-encoding the
  // intermediate batches would be pure overhead.
  CsvBatchOptions options;
  options.dictionary = false;
  reader_ = std::make_unique<CsvBatchReader>(data, schema, options);
}

CsvRowReader::~CsvRowReader() = default;

bool CsvRowReader::Next(Row* row) {
  while (cursor_ >= batch_.num_rows()) {
    if (!reader_->Next(&batch_)) return false;
    cursor_ = 0;
  }
  batch_.ExtractRow(cursor_++, row);
  ++rows_;
  return true;
}

int64_t CsvRowReader::malformed_rows() const {
  return reader_->stats().malformed_rows;
}

bool ScalarRowReader::Next(Row* row) {
  while (pos_ < data_.size()) {
    size_t nl = data_.find('\n', pos_);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = data_.substr(pos_);
      pos_ = data_.size();
    } else {
      line = data_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::vector<std::string_view>& fields = parser_.Parse(line);
    if (fields.size() != schema_->size()) {
      ++malformed_;
      continue;
    }
    row->clear();
    row->reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      row->push_back(Value::FromField(fields[i], schema_->column(i).type));
    }
    ++rows_;
    return true;
  }
  return false;
}

void WriteCsvRecord(const std::vector<std::string_view>& fields,
                    std::string* out) {
  // A single empty field would serialize to a blank line, which every
  // reader skips as if the record never existed — a null row must survive
  // a projection round-trip, so quote it instead.
  if (fields.size() == 1 && fields[0].empty()) {
    out->append("\"\"\n");
    return;
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendCsvField(fields[i], out);
  }
  out->push_back('\n');
}

void WriteCsvRow(const Row& row, std::string* out) {
  std::vector<std::string> rendered;
  rendered.reserve(row.size());
  std::vector<std::string_view> views;
  views.reserve(row.size());
  for (const Value& v : row) {
    rendered.push_back(v.ToString());
  }
  for (const std::string& s : rendered) views.push_back(s);
  WriteCsvRecord(views, out);
}

}  // namespace scoop
