#include "csv/csv_storlet.h"

#include "common/strings.h"
#include "csv/record_reader.h"
#include "sql/source_filter.h"

namespace scoop {

Status CsvStorlet::Invoke(StorletInputStream& input,
                          StorletOutputStream& output,
                          const StorletParams& params, StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("csvstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  // Projection: resolve names to source indices once.
  std::vector<int> projection;
  bool project_all = true;
  auto projection_it = params.find("projection");
  if (projection_it != params.end() &&
      !Trim(projection_it->second).empty()) {
    project_all = false;
    for (std::string_view name : Split(projection_it->second, ',')) {
      int idx = schema.IndexOf(Trim(name));
      if (idx < 0) {
        return Status::NotFound("projection column not in schema: " +
                                std::string(Trim(name)));
      }
      projection.push_back(idx);
    }
  }

  SourceFilter selection = SourceFilter::True();
  auto selection_it = params.find("selection");
  if (selection_it != params.end() && !Trim(selection_it->second).empty()) {
    SCOOP_ASSIGN_OR_RETURN(selection,
                           SourceFilter::Parse(selection_it->second));
  }
  bool has_selection = !selection.IsTrue();

  CsvRecordParser parser;
  std::vector<std::string_view> projected;
  std::string scratch;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  while (auto line = input.ReadLine()) {
    std::string_view record = *line;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    if (record.empty()) continue;
    ++rows_in;
    if (!has_selection && project_all) {
      // Trivial invocation: identity copy.
      output.WriteLine(record);
      ++rows_out;
      continue;
    }
    const std::vector<std::string_view>& fields = parser.Parse(record);
    if (fields.size() != schema.size()) continue;  // malformed record
    if (has_selection && !selection.Matches(fields, schema)) continue;
    ++rows_out;
    if (project_all) {
      // Row-selectivity fast path: pass the record through untouched.
      output.WriteLine(record);
    } else {
      projected.clear();
      for (int idx : projection) {
        projected.push_back(fields[static_cast<size_t>(idx)]);
      }
      scratch.clear();
      WriteCsvRecord(projected, &scratch);
      output.Write(scratch);
    }
  }
  logger.Emit(StrFormat("csvstorlet: %lld rows in, %lld rows out",
                        static_cast<long long>(rows_in),
                        static_cast<long long>(rows_out)));
  output.SetMetadata("rows-in", std::to_string(rows_in));
  output.SetMetadata("rows-out", std::to_string(rows_out));
  return Status::OK();
}

}  // namespace scoop
