#include "csv/csv_storlet.h"

#include <cstdlib>
#include <numeric>

#include "columnar/batch_wire.h"
#include "columnar/record_batch.h"
#include "common/strings.h"
#include "csv/batch_reader.h"
#include "csv/record_reader.h"
#include "sql/source_filter.h"

namespace scoop {

namespace {

// The pre-columnar row-at-a-time engine, kept behind `engine=row` as the
// reference arm for the equivalence tests and bench/ablation_columnar.
Status RowEngine(StorletInputStream& input, StorletOutputStream& output,
                 StorletLogger& logger, const Schema& schema,
                 const std::vector<int>& projection, bool project_all,
                 const SourceFilter& selection, bool has_selection,
                 int64_t limit) {
  CsvRecordParser parser;
  std::vector<std::string_view> projected;
  std::string scratch;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  bool limit_hit = limit == 0;
  while (!limit_hit) {
    auto line = input.ReadLine();
    if (!line) break;
    std::string_view record = *line;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    if (record.empty()) continue;
    ++rows_in;
    if (has_selection || !project_all) {
      const std::vector<std::string_view>& fields = parser.Parse(record);
      if (fields.size() != schema.size()) continue;  // malformed record
      if (has_selection && !selection.Matches(fields, schema)) continue;
      ++rows_out;
      if (project_all) {
        // Row-selectivity fast path: pass the record through untouched.
        output.WriteLine(record);
      } else {
        projected.clear();
        for (int idx : projection) {
          projected.push_back(fields[static_cast<size_t>(idx)]);
        }
        scratch.clear();
        WriteCsvRecord(projected, &scratch);
        output.Write(scratch);
      }
    } else {
      // Trivial invocation: identity copy.
      output.WriteLine(record);
      ++rows_out;
    }
    // LIMIT pushdown: stop the scan (and, via queue teardown, the
    // upstream object read) once enough rows are out.
    if (limit >= 0 && rows_out >= limit) limit_hit = true;
  }
  logger.Emit(StrFormat("csvstorlet: %lld rows in, %lld rows out",
                        static_cast<long long>(rows_in),
                        static_cast<long long>(rows_out)));
  output.SetMetadata("rows-in", std::to_string(rows_in));
  output.SetMetadata("rows-out", std::to_string(rows_out));
  if (limit_hit) output.SetMetadata("limit-hit", "1");
  return Status::OK();
}

}  // namespace

Status CsvStorlet::Invoke(StorletInputStream& input,
                          StorletOutputStream& output,
                          const StorletParams& params, StorletLogger& logger) {
  auto schema_it = params.find("schema");
  if (schema_it == params.end()) {
    return Status::InvalidArgument("csvstorlet requires a 'schema' parameter");
  }
  SCOOP_ASSIGN_OR_RETURN(Schema schema, Schema::FromSpec(schema_it->second));

  // Projection: resolve names to source indices once.
  std::vector<int> projection;
  bool project_all = true;
  auto projection_it = params.find("projection");
  if (projection_it != params.end() &&
      !Trim(projection_it->second).empty()) {
    project_all = false;
    for (std::string_view name : Split(projection_it->second, ',')) {
      int idx = schema.IndexOf(Trim(name));
      if (idx < 0) {
        return Status::NotFound("projection column not in schema: " +
                                std::string(Trim(name)));
      }
      projection.push_back(idx);
    }
  }

  SourceFilter selection = SourceFilter::True();
  auto selection_it = params.find("selection");
  if (selection_it != params.end() && !Trim(selection_it->second).empty()) {
    SCOOP_ASSIGN_OR_RETURN(selection,
                           SourceFilter::Parse(selection_it->second));
  }
  bool has_selection = !selection.IsTrue();

  // LIMIT pushdown: stop after emitting this many selection-surviving
  // rows. Only valid when the driver needs a row *prefix* (no ORDER BY,
  // no aggregation) — the planner decides that; here it is just a cap.
  int64_t limit = -1;
  auto limit_it = params.find("limit");
  if (limit_it != params.end() && !Trim(limit_it->second).empty()) {
    std::string text(Trim(limit_it->second));
    char* end = nullptr;
    limit = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || limit < 0) {
      return Status::InvalidArgument("csvstorlet: bad 'limit' parameter: " +
                                     text);
    }
  }

  auto output_it = params.find("output");
  bool batch_output = output_it != params.end() && output_it->second == "batch";

  auto engine_it = params.find("engine");
  if (engine_it != params.end() && engine_it->second == "row") {
    if (batch_output) {
      return Status::InvalidArgument(
          "csvstorlet: engine=row cannot emit output=batch");
    }
    return RowEngine(input, output, logger, schema, projection, project_all,
                     selection, has_selection, limit);
  }

  if (!batch_output && !has_selection && project_all) {
    // Trivial invocation: identity copy, malformed records included —
    // batching would drop them, and there is nothing to vectorize.
    return RowEngine(input, output, logger, schema, projection, project_all,
                     selection, has_selection, limit);
  }

  // Batched engine: one structural scan per window, selection evaluated
  // over whole RawRecordBatches with a selection vector.
  const std::vector<int>* out_indices = &projection;
  std::vector<int> identity;
  if (project_all) {
    identity.resize(schema.size());
    std::iota(identity.begin(), identity.end(), 0);
    out_indices = &identity;
  }

  // Batch frames carry the RAW (unparsed) projected fields as string
  // columns: the text and batch pipelines then agree byte-for-byte, since
  // consumers parse fields exactly where the text path would have.
  Schema wire_schema;
  if (batch_output) {
    std::vector<Column> cols;
    for (int idx : *out_indices) {
      cols.push_back(Column{schema.column(static_cast<size_t>(idx)).name,
                            ColumnType::kString});
    }
    wire_schema = Schema(std::move(cols));
  }

  CsvStreamBatcher batcher(&input, schema.size());
  RawRecordBatch raw;
  std::vector<uint32_t> selected;
  std::vector<std::string_view> projected;
  std::string scratch;
  int64_t rows_out = 0;
  bool limit_hit = limit == 0;
  while (!limit_hit && batcher.Next(&raw)) {
    selected.resize(static_cast<size_t>(raw.num_rows));
    std::iota(selected.begin(), selected.end(), 0u);
    if (has_selection) {
      selection.MatchRows(raw.fields.data(), raw.num_fields, schema,
                          &selected);
    }
    if (limit >= 0 &&
        static_cast<int64_t>(selected.size()) > limit - rows_out) {
      selected.resize(static_cast<size_t>(limit - rows_out));
    }
    if (selected.empty()) continue;
    rows_out += static_cast<int64_t>(selected.size());
    if (batch_output) {
      RecordBatch frame_batch(wire_schema, /*dictionary_encode=*/true);
      frame_batch.Reserve(static_cast<int64_t>(selected.size()));
      for (uint32_t r : selected) {
        for (size_t c = 0; c < out_indices->size(); ++c) {
          size_t src = static_cast<size_t>((*out_indices)[c]);
          frame_batch.mutable_column(c)->AppendString(
              raw.fields[r * raw.num_fields + src]);
        }
      }
      frame_batch.set_num_rows(static_cast<int64_t>(selected.size()));
      scratch.clear();
      AppendBatchFrame(frame_batch, &scratch);
      output.Write(scratch);
    } else if (project_all) {
      for (uint32_t r : selected) output.WriteLine(raw.records[r]);
    } else {
      for (uint32_t r : selected) {
        projected.clear();
        for (int idx : projection) {
          projected.push_back(
              raw.fields[r * raw.num_fields + static_cast<size_t>(idx)]);
        }
        scratch.clear();
        WriteCsvRecord(projected, &scratch);
        output.Write(scratch);
      }
    }
    if (limit >= 0 && rows_out >= limit) limit_hit = true;
  }
  int64_t rows_in = batcher.records_seen();
  logger.Emit(StrFormat("csvstorlet: %lld rows in, %lld rows out%s",
                        static_cast<long long>(rows_in),
                        static_cast<long long>(rows_out),
                        batch_output ? " (batch frames)" : ""));
  output.SetMetadata("rows-in", std::to_string(rows_in));
  output.SetMetadata("rows-out", std::to_string(rows_out));
  if (batch_output) output.SetMetadata("output-format", "batch");
  if (limit_hit) output.SetMetadata("limit-hit", "1");
  return Status::OK();
}

}  // namespace scoop
