#include "csv/batch_reader.h"

#include "columnar/simd.h"
#include "common/strings.h"
#include "storlets/storlet.h"

namespace scoop {

namespace {

// All-digit fast path (the overwhelmingly common CSV integer shape);
// anything else — signs, whitespace, overflow risk — falls back to the
// strict shared parser so semantics stay identical to Value::FromField.
inline bool FastParseInt64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 18) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = static_cast<int64_t>(v);
  return true;
}

// Parses one raw field into `col` with Value::FromField semantics:
// empty -> null, strict numeric parse, unparseable numerics -> null.
void AppendField(std::string_view field, ColumnType type, ColumnVector* col) {
  if (field.empty()) {
    col->AppendNull();
    return;
  }
  switch (type) {
    case ColumnType::kString:
      col->AppendString(field);
      return;
    case ColumnType::kInt64: {
      int64_t fast;
      if (FastParseInt64(field, &fast)) {
        col->AppendInt64(fast);
        return;
      }
      Result<int64_t> parsed = ParseInt64(field);
      if (parsed.ok()) {
        col->AppendInt64(*parsed);
      } else {
        col->AppendNull();
      }
      return;
    }
    case ColumnType::kDouble: {
      double fast;
      if (FastParseDouble(field, &fast)) {
        col->AppendDouble(fast);
        return;
      }
      Result<double> parsed = ParseDouble(field);
      if (parsed.ok()) {
        col->AppendDouble(*parsed);
      } else {
        col->AppendNull();
      }
      return;
    }
  }
}

}  // namespace

CsvRecordCursor::CsvRecordCursor(std::string_view data) : data_(data) {
  ScanCsvStructural(data_.data(), data_.size(), &structural_);
}

void CsvRecordCursor::ParseQuoted(std::string_view line) {
  // Mirror of CsvRecordParser::Parse's quoted branch, except unescaped
  // fields land in a per-window arena so views survive across records.
  fields_.clear();
  size_t i = 0;
  while (true) {
    if (i < line.size() && line[i] == '"') {
      owned_.emplace_back();
      std::string& field = owned_.back();
      ++i;
      while (i < line.size()) {
        char c = line[i++];
        if (c == '"') {
          if (i < line.size() && line[i] == '"') {
            field.push_back('"');
            ++i;
          } else {
            break;
          }
        } else {
          field.push_back(c);
        }
      }
      fields_.push_back(field);
      while (i < line.size() && line[i] != ',') ++i;
    } else {
      size_t comma = line.find(',', i);
      size_t end = comma == std::string_view::npos ? line.size() : comma;
      fields_.push_back(line.substr(i, end - i));
      i = end;
    }
    if (i >= line.size()) break;
    ++i;  // consume ','
    if (i == line.size()) {
      fields_.push_back(std::string_view());
      break;
    }
  }
}

bool CsvRecordCursor::Advance() {
  while (pos_ < data_.size()) {
    commas_.clear();
    bool has_quote = false;
    size_t nl = data_.size();
    while (token_ < structural_.size()) {
      uint32_t t = structural_[token_++];
      uint32_t off = t & kCsvOffsetMask;
      uint32_t tag = t & kCsvTagMask;
      if (tag == kCsvTagNewline) {
        nl = off;
        break;
      }
      if (tag == kCsvTagQuote) {
        has_quote = true;
      } else {
        commas_.push_back(off);
      }
    }
    size_t start = pos_;
    size_t end = nl;
    pos_ = nl < data_.size() ? nl + 1 : data_.size();
    if (end > start && data_[end - 1] == '\r') --end;
    if (end == start) continue;  // blank line, skipped like the row readers
    record_ = data_.substr(start, end - start);
    if (has_quote) {
      ParseQuoted(record_);
    } else {
      fields_.clear();
      size_t fstart = start;
      for (uint32_t comma : commas_) {
        fields_.push_back(data_.substr(fstart, comma - fstart));
        fstart = comma + 1;
      }
      fields_.push_back(data_.substr(fstart, end - fstart));
    }
    return true;
  }
  return false;
}

CsvBatchReader::CsvBatchReader(std::string_view data, const Schema* schema,
                               CsvBatchOptions options)
    : schema_(schema), options_(options), cursor_(data) {
  stats_.scanned_bytes = data.size();
}

bool CsvBatchReader::Next(RecordBatch* batch) {
  RecordBatch out(*schema_, options_.dictionary);
  int64_t n = 0;
  while (n < options_.max_batch_rows && cursor_.Advance()) {
    const std::vector<std::string_view>& fields = cursor_.fields();
    if (fields.size() != schema_->size()) {
      ++stats_.malformed_rows;
      continue;
    }
    if (n == 0) out.Reserve(options_.max_batch_rows);
    for (size_t i = 0; i < fields.size(); ++i) {
      AppendField(fields[i], schema_->column(i).type, out.mutable_column(i));
    }
    ++n;
  }
  if (n == 0) return false;
  out.set_num_rows(n);
  stats_.rows_read += n;
  ++stats_.batches;
  *batch = std::move(out);
  return true;
}

CsvStreamBatcher::CsvStreamBatcher(StorletInputStream* input,
                                   size_t num_fields, CsvBatchOptions options)
    : input_(input), num_fields_(num_fields), options_(options) {
  if (options_.window_bytes == 0) options_.window_bytes = 1;
}

bool CsvStreamBatcher::Refill() {
  if (eof_ && carry_.empty()) return false;
  buffer_ = std::move(carry_);
  carry_.clear();
  cursor_.reset();
  while (!eof_ && buffer_.size() < options_.window_bytes) {
    size_t old = buffer_.size();
    size_t want = options_.window_bytes - old;
    buffer_.resize(old + want);
    size_t got = input_->Read(buffer_.data() + old, want);
    buffer_.resize(old + got);
    if (got == 0) eof_ = true;
  }
  // Cut the window at the last complete record; the tail carries over.
  // A window with no newline at all keeps growing until one shows up or
  // the stream ends — a single record is never split.
  size_t cut;
  for (;;) {
    size_t nl = buffer_.rfind('\n');
    if (nl != std::string::npos) {
      cut = nl + 1;
      break;
    }
    if (eof_) {
      cut = buffer_.size();
      break;
    }
    size_t old = buffer_.size();
    buffer_.resize(old + options_.window_bytes);
    size_t got = input_->Read(buffer_.data() + old, options_.window_bytes);
    buffer_.resize(old + got);
    if (got == 0) eof_ = true;
  }
  if (cut < buffer_.size()) {
    carry_.assign(buffer_, cut, buffer_.size() - cut);
    buffer_.resize(cut);
  }
  if (buffer_.empty()) return Refill();  // e.g. a window of pure carry
  cursor_ = std::make_unique<CsvRecordCursor>(buffer_);
  return true;
}

bool CsvStreamBatcher::Next(RawRecordBatch* batch) {
  batch->num_rows = 0;
  batch->num_fields = num_fields_;
  batch->fields.clear();
  batch->records.clear();
  while (batch->num_rows < options_.max_batch_rows) {
    if (cursor_ == nullptr || !cursor_->Advance()) {
      // End the batch at the window edge when it already has rows: a
      // refill would replace the buffer the collected views point into.
      if (batch->num_rows > 0) return true;
      if (!Refill()) return false;
      continue;
    }
    ++records_seen_;
    const std::vector<std::string_view>& fields = cursor_->fields();
    if (fields.size() != num_fields_) {
      ++malformed_;
      continue;
    }
    batch->fields.insert(batch->fields.end(), fields.begin(), fields.end());
    batch->records.push_back(cursor_->record());
    ++batch->num_rows;
  }
  return true;
}

}  // namespace scoop
