#include "compute/dataframe.h"

#include "common/strings.h"

namespace scoop {

DataFrame& DataFrame::Select(std::vector<std::string> exprs) {
  if (!exprs.empty()) select_ = std::move(exprs);
  return *this;
}

DataFrame& DataFrame::Where(const std::string& predicate) {
  where_.push_back(predicate);
  return *this;
}

DataFrame& DataFrame::GroupBy(std::vector<std::string> keys) {
  group_by_ = std::move(keys);
  return *this;
}

DataFrame& DataFrame::Having(const std::string& predicate) {
  having_ = predicate;
  return *this;
}

DataFrame& DataFrame::OrderBy(const std::string& expr, bool descending) {
  order_by_.emplace_back(expr, descending);
  return *this;
}

DataFrame& DataFrame::Limit(int64_t n) {
  limit_ = n;
  return *this;
}

std::string DataFrame::ToSql() const {
  std::string sql = "SELECT " + Join(select_, ", ") + " FROM " + table_;
  for (size_t i = 0; i < where_.size(); ++i) {
    sql += (i == 0 ? " WHERE " : " AND ");
    sql += "(" + where_[i] + ")";
  }
  if (!group_by_.empty()) sql += " GROUP BY " + Join(group_by_, ", ");
  if (!having_.empty()) sql += " HAVING " + having_;
  for (size_t i = 0; i < order_by_.size(); ++i) {
    sql += (i == 0 ? " ORDER BY " : ", ");
    sql += order_by_[i].first;
    if (order_by_[i].second) sql += " DESC";
  }
  if (limit_ >= 0) sql += " LIMIT " + std::to_string(limit_);
  return sql;
}

Result<QueryOutcome> DataFrame::Collect() const {
  return session_->Sql(ToSql());
}

Result<std::string> DataFrame::Explain() const {
  return session_->ExplainSql(ToSql());
}

}  // namespace scoop
