#ifndef SCOOP_COMPUTE_JOB_H_
#define SCOOP_COMPUTE_JOB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compute/scheduler.h"
#include "datasource/datasource.h"
#include "sql/ast.h"
#include "sql/executor.h"

namespace scoop {

// Ingestion/processing statistics of one SQL job — the raw material for
// the paper's selectivity and resource metrics.
struct JobStats {
  int partitions = 0;
  int partitions_pushdown = 0;  // partitions the store filtered for us
  uint64_t raw_bytes = 0;       // dataset bytes the job covered at rest
  uint64_t bytes_ingested = 0;  // bytes that crossed to the compute cluster
  int requests = 0;             // GETs issued against the store
  int64_t rows_scanned = 0;     // rows offered to the plan
  int64_t rows_passed = 0;      // rows surviving the WHERE
  int64_t rows_output = 0;
  double wall_seconds = 0.0;
  std::vector<TaskInfo> tasks;

  // The paper's "query data selectivity": fraction of the dataset that did
  // not need to be ingested.
  double DataSelectivity() const {
    if (raw_bytes == 0) return 0.0;
    double kept = static_cast<double>(bytes_ingested) /
                  static_cast<double>(raw_bytes);
    return kept >= 1.0 ? 0.0 : 1.0 - kept;
  }
};

struct QueryOutcome {
  ResultTable table;
  JobStats stats;
};

// Executes a SELECT over a partitioned relation with Spark-like staging:
// partition discovery -> parallel per-partition tasks (scan + residual
// filter + partial aggregation) -> ordered merge at the driver -> final
// sort/limit/projection. Whether filtering happens at the store or on the
// workers is decided per partition by what the scan reports.
class SqlJobRunner {
 public:
  // `metrics` (optional) receives the "exec.batch_eval_us" histogram —
  // per-RecordBatch evaluation latency on the columnar plane.
  explicit SqlJobRunner(TaskScheduler* scheduler,
                        MetricRegistry* metrics = nullptr)
      : scheduler_(scheduler), metrics_(metrics) {}

  Result<QueryOutcome> Run(const SelectStatement& stmt,
                           PartitionedRelation* relation);
  Result<QueryOutcome> RunSql(const std::string& sql,
                              PartitionedRelation* relation);

 private:
  TaskScheduler* scheduler_;
  MetricRegistry* metrics_;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_JOB_H_
