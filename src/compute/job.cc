#include "compute/job.h"

#include "common/trace.h"
#include "sql/parser.h"

namespace scoop {

Result<QueryOutcome> SqlJobRunner::Run(const SelectStatement& stmt,
                                       PartitionedRelation* relation) {
  Stopwatch watch;
  SCOOP_ASSIGN_OR_RETURN(auto plan,
                         PhysicalPlan::Create(stmt, relation->schema()));
  SCOOP_ASSIGN_OR_RETURN(std::vector<Partition> partitions,
                         relation->Partitions());

  struct TaskOutput {
    PartialResult partial;
    PartitionScanResult scan_info;  // rows cleared, stats kept
    Status status = Status::OK();
  };
  std::vector<TaskOutput> outputs(partitions.size());

  // The full pushdown hint set, shared by every task: projection and
  // selection always; partial aggregation when the plan's shape is
  // distributable; a LIMIT cap when the driver only needs a row prefix.
  // Sources that ignore the extensions return rows and the tasks
  // aggregate/truncate compute-side — same answer either way.
  ScanSpec scan_spec;
  scan_spec.required_columns = plan->required_columns();
  scan_spec.filter = plan->pushed_filter();
  scan_spec.aggregate = plan->agg_pushdown();
  if (plan->limit_pushdown_eligible()) scan_spec.limit = plan->limit();

  ExponentialHistogram* batch_eval_us =
      metrics_ != nullptr ? metrics_->GetHistogram("exec.batch_eval_us")
                          : nullptr;
  std::vector<TaskInfo> task_infos = scheduler_->RunTasks(
      partitions.size(), [&](size_t index, int /*worker_id*/) {
        TaskOutput& out = outputs[index];
        auto scan = relation->ScanPartition(partitions[index], scan_spec);
        if (!scan.ok()) {
          out.status = scan.status();
          return;
        }
        if (scan->agg_applied) {
          // The store already folded this partition into partial
          // aggregate states; absorb them as if the rows had been
          // processed here.
          AggPartialFrame frame;
          frame.agg_kinds = scan_spec.aggregate->agg_kinds;
          frame.rows = scan->agg_rows;
          frame.groups = std::move(scan->agg_groups);
          out.status = plan->AbsorbAggPartials(frame, &out.partial);
          if (!out.status.ok()) return;
          scan->agg_groups.clear();
        }
        // Row-plane sources (and adapters) fill rows; columnar sources
        // fill batches. Either way the same plan accumulates.
        for (const Row& row : scan->rows) {
          plan->ProcessRow(row, scan->filter_applied, &out.partial);
        }
        for (const RecordBatch& batch : scan->batches) {
          Stopwatch batch_watch;
          plan->ProcessBatch(batch, scan->filter_applied, &out.partial);
          if (batch_eval_us != nullptr) {
            batch_eval_us->Record(static_cast<int64_t>(
                batch_watch.ElapsedSeconds() * 1e6));
          }
        }
        scan->rows.clear();
        scan->batches.clear();
        out.scan_info = std::move(scan).value();
      });

  QueryOutcome outcome;
  outcome.stats.partitions = static_cast<int>(partitions.size());
  outcome.stats.tasks = std::move(task_infos);
  // Driver-side final merge: every partition's partial states — whether
  // produced by a storlet or by a task — collapse here, in partition
  // order, then finalize into the result table. Roots its own trace; the
  // store-side trees hang off the per-partition stocator spans instead.
  TraceSpan merge_span("driver.final_merge");
  PartialResult merged;
  for (size_t i = 0; i < outputs.size(); ++i) {
    SCOOP_RETURN_IF_ERROR(outputs[i].status);
    // Merge in partition order: first_value determinism depends on it.
    plan->MergePartial(&merged, std::move(outputs[i].partial));
    const PartitionScanResult& info = outputs[i].scan_info;
    outcome.stats.raw_bytes += info.raw_bytes;
    outcome.stats.bytes_ingested += info.bytes_transferred;
    outcome.stats.requests += info.requests;
    if (info.filter_applied) ++outcome.stats.partitions_pushdown;
  }
  outcome.stats.rows_scanned = merged.rows_seen;
  outcome.stats.rows_passed = merged.rows_passed;
  SCOOP_ASSIGN_OR_RETURN(outcome.table, plan->Finalize(std::move(merged)));
  if (merge_span.active()) {
    merge_span.SetTag("partitions", std::to_string(outputs.size()));
    merge_span.SetTag("rows_output", std::to_string(outcome.table.rows.size()));
  }
  merge_span.End();
  outcome.stats.rows_output = static_cast<int64_t>(outcome.table.rows.size());
  outcome.stats.wall_seconds = watch.ElapsedSeconds();
  return outcome;
}

Result<QueryOutcome> SqlJobRunner::RunSql(const std::string& sql,
                                          PartitionedRelation* relation) {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return Run(stmt, relation);
}

}  // namespace scoop
