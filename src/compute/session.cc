#include "compute/session.h"

#include "common/strings.h"
#include "sql/parser.h"

namespace scoop {

void SparkSession::RegisterTable(
    const std::string& name, std::shared_ptr<PartitionedRelation> relation) {
  tables_[ToLower(name)] = std::move(relation);
}

Result<std::shared_ptr<PartitionedRelation>> SparkSession::GetTable(
    const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second;
}

Result<QueryOutcome> SparkSession::Sql(const std::string& query) {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(query));
  SCOOP_ASSIGN_OR_RETURN(auto relation, GetTable(stmt.table));
  SqlJobRunner runner(&scheduler_, metrics_);
  return runner.Run(stmt, relation.get());
}

Result<std::string> SparkSession::ExplainSql(const std::string& query) {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(query));
  SCOOP_ASSIGN_OR_RETURN(auto relation, GetTable(stmt.table));
  SCOOP_ASSIGN_OR_RETURN(auto plan,
                         PhysicalPlan::Create(stmt, relation->schema()));
  return plan->Explain();
}

}  // namespace scoop
