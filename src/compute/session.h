#ifndef SCOOP_COMPUTE_SESSION_H_
#define SCOOP_COMPUTE_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "compute/job.h"
#include "compute/scheduler.h"
#include "datasource/datasource.h"

namespace scoop {

// The SparkSession-like entry point of the compute cluster: tables are
// registered against data sources, then queried with SQL. The FROM clause
// resolves against the registered names (the paper's `largeMeter`).
class SparkSession {
 public:
  explicit SparkSession(int num_workers) : scheduler_(num_workers) {}

  SparkSession(const SparkSession&) = delete;
  SparkSession& operator=(const SparkSession&) = delete;

  TaskScheduler& scheduler() { return scheduler_; }

  // Points query execution at a metric registry (exec.batch_eval_us and
  // friends); nullptr (the default) disables execution metrics.
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  // Registers (or replaces) a table backed by `relation`.
  void RegisterTable(const std::string& name,
                     std::shared_ptr<PartitionedRelation> relation);

  Result<std::shared_ptr<PartitionedRelation>> GetTable(
      const std::string& name) const;

  // Parses and executes `query`, returning the result and job statistics.
  Result<QueryOutcome> Sql(const std::string& query);

  // Compiles `query` and returns the EXPLAIN text (scan projection,
  // pushed vs residual filters, aggregation, ordering) without running it.
  Result<std::string> ExplainSql(const std::string& query);

 private:
  TaskScheduler scheduler_;
  MetricRegistry* metrics_ = nullptr;
  std::map<std::string, std::shared_ptr<PartitionedRelation>> tables_;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_SESSION_H_
