#include "compute/scheduler.h"

namespace scoop {

std::vector<TaskInfo> TaskScheduler::RunTasks(
    size_t task_count, const std::function<void(size_t, int)>& fn) {
  std::vector<TaskInfo> infos(task_count);
  std::atomic<size_t> next{0};
  auto worker_loop = [&](int worker_id) {
    while (true) {
      size_t index = next.fetch_add(1);
      if (index >= task_count) return;
      Stopwatch watch;
      fn(index, worker_id);
      infos[index].task_index = index;
      infos[index].worker_id = worker_id;
      infos[index].seconds = watch.ElapsedSeconds();
    }
  };
  int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_workers_), task_count));
  if (workers <= 1) {
    worker_loop(0);
    return infos;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
  for (auto& t : threads) t.join();
  return infos;
}

}  // namespace scoop
