#include "compute/storlet_rdd.h"

#include "storlets/headers.h"

namespace scoop {

Result<std::vector<StorletRdd::PartitionOutput>> StorletRdd::Collect() {
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client_->ListObjects(container_, prefix_));
  std::vector<PartitionOutput> outputs(objects.size());
  std::vector<Status> statuses(objects.size(), Status::OK());

  scheduler_->RunTasks(objects.size(), [&](size_t index, int /*worker*/) {
    Headers headers;
    headers.Set(kRunStorletHeader, storlet_);
    for (const auto& [key, value] : params_) {
      headers.Set(std::string(kStorletParamPrefix) + key, value);
    }
    Request request = Request::Get("/" + client_->account() + "/" +
                                   container_ + "/" + objects[index].name);
    for (const auto& [name, value] : headers) request.headers.Set(name, value);
    HttpResponse response = client_->Send(std::move(request));
    if (!response.ok()) {
      statuses[index] = Status::Internal(
          "storlet GET -> " + std::to_string(response.status) + " " +
          response.body);
      return;
    }
    outputs[index].object = objects[index].name;
    outputs[index].output = std::move(response.body);
    // When the store declined (policy off), the body is the raw object.
    outputs[index].executed_at_store =
        response.headers.Has(kStorletExecutedHeader);
  });
  for (const Status& status : statuses) SCOOP_RETURN_IF_ERROR(status);
  return outputs;
}

Result<std::string> StorletRdd::CollectConcatenated() {
  SCOOP_ASSIGN_OR_RETURN(std::vector<PartitionOutput> outputs, Collect());
  std::string out;
  for (PartitionOutput& output : outputs) out += output.output;
  return out;
}

}  // namespace scoop
