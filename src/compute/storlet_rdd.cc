#include "compute/storlet_rdd.h"

#include "storlets/headers.h"

namespace scoop {

Result<std::vector<StorletRdd::PartitionOutput>> StorletRdd::Collect() {
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client_->ListObjects(container_, prefix_));
  std::vector<PartitionOutput> outputs(objects.size());
  std::vector<Status> statuses(objects.size(), Status::OK());

  scheduler_->RunTasks(objects.size(), [&](size_t index, int /*worker*/) {
    // Client edge: each per-object invocation roots its own trace, the
    // whole store-side tree for that object hangs below it.
    TraceSpan span("storletrdd.object");
    if (span.active()) {
      span.SetTag("object", objects[index].name);
      span.SetTag("storlet", storlet_);
    }
    Headers headers;
    headers.Set(kRunStorletHeader, storlet_);
    for (const auto& [key, value] : params_) {
      headers.Set(std::string(kStorletParamPrefix) + key, value);
    }
    Request request = Request::Get("/" + client_->account() + "/" +
                                   container_ + "/" + objects[index].name);
    for (const auto& [name, value] : headers) request.headers.Set(name, value);
    StampTraceContext(span.context(), &request.headers);
    HttpResponse response = client_->Send(std::move(request));
    if (!response.ok()) {
      statuses[index] = Status::Internal(
          "storlet GET -> " + std::to_string(response.status) + " " +
          response.body());
      return;
    }
    outputs[index].object = objects[index].name;
    // When the store declined (policy off), the body is the raw object.
    outputs[index].executed_at_store =
        response.headers.Has(kStorletExecutedHeader);
    // Drain the invocation's output incrementally; a filter failure
    // after the first chunk surfaces here as the stream's error.
    statuses[index] = response.TakeBodyStream()->DrainTo(
        [&](std::string_view chunk) {
          outputs[index].output.append(chunk);
          return Status::OK();
        });
  });
  for (const Status& status : statuses) SCOOP_RETURN_IF_ERROR(status);
  return outputs;
}

Result<std::string> StorletRdd::CollectConcatenated() {
  SCOOP_ASSIGN_OR_RETURN(std::vector<PartitionOutput> outputs, Collect());
  std::string out;
  for (PartitionOutput& output : outputs) out += output.output;
  return out;
}

Status StorletRdd::ForEachChunk(
    const std::function<Status(const std::string& object,
                               std::string_view chunk,
                               bool executed_at_store)>& consume) {
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client_->ListObjects(container_, prefix_));
  std::vector<Status> statuses(objects.size(), Status::OK());

  scheduler_->RunTasks(objects.size(), [&](size_t index, int /*worker*/) {
    TraceSpan span("storletrdd.object");
    if (span.active()) {
      span.SetTag("object", objects[index].name);
      span.SetTag("storlet", storlet_);
    }
    Headers headers;
    headers.Set(kRunStorletHeader, storlet_);
    for (const auto& [key, value] : params_) {
      headers.Set(std::string(kStorletParamPrefix) + key, value);
    }
    Request request = Request::Get("/" + client_->account() + "/" +
                                   container_ + "/" + objects[index].name);
    for (const auto& [name, value] : headers) request.headers.Set(name, value);
    StampTraceContext(span.context(), &request.headers);
    HttpResponse response = client_->Send(std::move(request));
    if (!response.ok()) {
      statuses[index] = Status::Internal(
          "storlet GET -> " + std::to_string(response.status) + " " +
          response.body());
      return;
    }
    bool executed = response.headers.Has(kStorletExecutedHeader);
    statuses[index] = response.TakeBodyStream()->DrainTo(
        [&](std::string_view chunk) {
          return consume(objects[index].name, chunk, executed);
        });
  });
  for (const Status& status : statuses) SCOOP_RETURN_IF_ERROR(status);
  return Status::OK();
}

}  // namespace scoop
