#ifndef SCOOP_COMPUTE_DATAFRAME_H_
#define SCOOP_COMPUTE_DATAFRAME_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compute/session.h"

namespace scoop {

// The programmatic face of Spark SQL (§III-A: "operations on data are done
// using SQL queries and a programmatic API (i.e., Data Frames API)").
// A DataFrame is a fluent builder over a registered table; Collect()
// compiles it to the same plans — and hence the same pushdown — as SQL.
//
//   auto out = DataFrame(session, "largeMeter")
//                  .Select({"vid", "sum(index) AS total"})
//                  .Where("city LIKE 'Rotterdam'")
//                  .GroupBy({"vid"})
//                  .OrderBy("vid")
//                  .Collect();
//
// Expression fragments use the SQL expression syntax; the builder only
// assembles the statement, so every validation error a SQL string would
// produce surfaces from Collect()/Explain() identically.
class DataFrame {
 public:
  DataFrame(SparkSession* session, std::string table)
      : session_(session), table_(std::move(table)) {}

  // Replaces the projection (default "*"). Entries may carry aliases.
  DataFrame& Select(std::vector<std::string> exprs);

  // Adds a conjunct to the WHERE clause (multiple calls AND together).
  DataFrame& Where(const std::string& predicate);

  DataFrame& GroupBy(std::vector<std::string> keys);

  // HAVING predicate (requires GroupBy or aggregate projections).
  DataFrame& Having(const std::string& predicate);

  // Appends a sort key.
  DataFrame& OrderBy(const std::string& expr, bool descending = false);

  DataFrame& Limit(int64_t n);

  // The SQL text this builder compiles to.
  std::string ToSql() const;

  // Executes on the session's cluster (pushdown included).
  Result<QueryOutcome> Collect() const;

  // The EXPLAIN text of the compiled plan.
  Result<std::string> Explain() const;

 private:
  SparkSession* session_;
  std::string table_;
  std::vector<std::string> select_ = {"*"};
  std::vector<std::string> where_;
  std::vector<std::string> group_by_;
  std::string having_;
  std::vector<std::pair<std::string, bool>> order_by_;
  int64_t limit_ = -1;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_DATAFRAME_H_
