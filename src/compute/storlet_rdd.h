#ifndef SCOOP_COMPUTE_STORLET_RDD_H_
#define SCOOP_COMPUTE_STORLET_RDD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compute/scheduler.h"
#include "objectstore/cluster.h"
#include "storlets/storlet.h"

namespace scoop {

// The Spark-Storlets RDD of the paper's §VII: a programmatic way for a
// Spark job to explicitly invoke a storlet on every object of a dataset,
// holding the invocation outputs as its distributed collection. It
// bypasses the Hadoop layer entirely: partitioning is object-aware (one
// task per object) rather than derived from an HDFS chunk size.
class StorletRdd {
 public:
  StorletRdd(SwiftClient* client, TaskScheduler* scheduler,
             std::string container, std::string prefix, std::string storlet,
             StorletParams params)
      : client_(client),
        scheduler_(scheduler),
        container_(std::move(container)),
        prefix_(std::move(prefix)),
        storlet_(std::move(storlet)),
        params_(std::move(params)) {}

  struct PartitionOutput {
    std::string object;
    std::string output;          // the storlet's output stream for the object
    bool executed_at_store = false;
  };

  // Runs the storlet on every object (in parallel tasks) and collects the
  // outputs, ordered by object name. Each partition is drained off the
  // store chunk by chunk; only the accumulated output is materialized.
  Result<std::vector<PartitionOutput>> Collect();

  // Concatenated outputs (convenience for text-producing storlets).
  Result<std::string> CollectConcatenated();

  // Fully-streaming form: the storlet's output for each object is handed
  // to `consume` chunk by chunk as it is produced, never materialized.
  // Chunks of one object arrive in order; objects run as parallel tasks,
  // so `consume` must tolerate interleaving across objects (it is called
  // concurrently from scheduler workers).
  Status ForEachChunk(
      const std::function<Status(const std::string& object,
                                 std::string_view chunk,
                                 bool executed_at_store)>& consume);

 private:
  SwiftClient* client_;
  TaskScheduler* scheduler_;
  std::string container_;
  std::string prefix_;
  std::string storlet_;
  StorletParams params_;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_STORLET_RDD_H_
