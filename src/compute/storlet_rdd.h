#ifndef SCOOP_COMPUTE_STORLET_RDD_H_
#define SCOOP_COMPUTE_STORLET_RDD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compute/scheduler.h"
#include "objectstore/cluster.h"
#include "storlets/storlet.h"

namespace scoop {

// The Spark-Storlets RDD of the paper's §VII: a programmatic way for a
// Spark job to explicitly invoke a storlet on every object of a dataset,
// holding the invocation outputs as its distributed collection. It
// bypasses the Hadoop layer entirely: partitioning is object-aware (one
// task per object) rather than derived from an HDFS chunk size.
class StorletRdd {
 public:
  StorletRdd(SwiftClient* client, TaskScheduler* scheduler,
             std::string container, std::string prefix, std::string storlet,
             StorletParams params)
      : client_(client),
        scheduler_(scheduler),
        container_(std::move(container)),
        prefix_(std::move(prefix)),
        storlet_(std::move(storlet)),
        params_(std::move(params)) {}

  struct PartitionOutput {
    std::string object;
    std::string output;          // the storlet's output stream for the object
    bool executed_at_store = false;
  };

  // Runs the storlet on every object (in parallel tasks) and collects the
  // outputs, ordered by object name.
  Result<std::vector<PartitionOutput>> Collect();

  // Concatenated outputs (convenience for text-producing storlets).
  Result<std::string> CollectConcatenated();

 private:
  SwiftClient* client_;
  TaskScheduler* scheduler_;
  std::string container_;
  std::string prefix_;
  std::string storlet_;
  StorletParams params_;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_STORLET_RDD_H_
