#ifndef SCOOP_COMPUTE_SCHEDULER_H_
#define SCOOP_COMPUTE_SCHEDULER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace scoop {

// Per-task execution record kept by the scheduler.
struct TaskInfo {
  size_t task_index = 0;
  int worker_id = 0;
  double seconds = 0.0;
};

// Spark-style dynamic task scheduler: a fixed pool of workers pulls task
// indices from a shared queue, so slow tasks (stragglers) don't idle the
// rest of the cluster. One scheduler instance models the job's stage.
class TaskScheduler {
 public:
  explicit TaskScheduler(int num_workers)
      : num_workers_(num_workers < 1 ? 1 : num_workers) {}

  int num_workers() const { return num_workers_; }

  // Runs `fn(task_index, worker_id)` for every index in [0, task_count),
  // distributing dynamically over the workers; blocks until all complete.
  // Returns per-task execution records ordered by task index.
  std::vector<TaskInfo> RunTasks(
      size_t task_count, const std::function<void(size_t, int)>& fn);

 private:
  int num_workers_;
};

}  // namespace scoop

#endif  // SCOOP_COMPUTE_SCHEDULER_H_
