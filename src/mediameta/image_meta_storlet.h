#ifndef SCOOP_MEDIAMETA_IMAGE_META_STORLET_H_
#define SCOOP_MEDIAMETA_IMAGE_META_STORLET_H_

#include <memory>
#include <string>

#include "storlets/storlet.h"

namespace scoop {

// Non-textual pushdown (paper §VII: "bringing EXIF metadata from JPEGs or
// text from PDF documents"): extracts the structured header of a binary
// image object and emits one CSV record — dimensions plus requested EXIF
// tags — while the (large) pixel payload never leaves the storage node.
// Paired with a StorletRdd, a whole bucket of images becomes a queryable
// metadata table.
//
// Parameters:
//   tags — comma-separated EXIF tag names to emit, in order (optional;
//          missing tags yield empty fields)
//
// Output record: width,height,channels[,<tag values...>]
class ImageMetaStorlet : public Storlet {
 public:
  static constexpr char kName[] = "imagemeta";

  std::string name() const override { return kName; }

  Status Invoke(StorletInputStream& input, StorletOutputStream& output,
                const StorletParams& params, StorletLogger& logger) override;

  static std::unique_ptr<Storlet> Make() {
    return std::make_unique<ImageMetaStorlet>();
  }
};

}  // namespace scoop

#endif  // SCOOP_MEDIAMETA_IMAGE_META_STORLET_H_
