#include "mediameta/image_format.h"

#include <cstring>

namespace scoop {

namespace {
constexpr char kMagic[4] = {'S', 'I', 'M', 'G'};

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

Result<uint16_t> GetU16(std::string_view data, size_t* pos) {
  if (*pos + 2 > data.size()) {
    return Status::InvalidArgument("truncated SIMG data");
  }
  uint16_t v = static_cast<uint8_t>(data[*pos]) |
               (static_cast<uint16_t>(static_cast<uint8_t>(data[*pos + 1]))
                << 8);
  *pos += 2;
  return v;
}

Result<std::string> GetString(std::string_view data, size_t* pos) {
  SCOOP_ASSIGN_OR_RETURN(uint16_t len, GetU16(data, pos));
  if (*pos + len > data.size()) {
    return Status::InvalidArgument("truncated SIMG string");
  }
  std::string out(data.substr(*pos, len));
  *pos += len;
  return out;
}

Result<SimpleImage> DecodeInternal(std::string_view data, bool with_pixels) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("not a SIMG object");
  }
  size_t pos = 4;
  SimpleImage image;
  SCOOP_ASSIGN_OR_RETURN(image.width, GetU16(data, &pos));
  SCOOP_ASSIGN_OR_RETURN(image.height, GetU16(data, &pos));
  if (pos >= data.size()) return Status::InvalidArgument("truncated SIMG");
  image.channels = static_cast<uint8_t>(data[pos++]);
  SCOOP_ASSIGN_OR_RETURN(uint16_t tags, GetU16(data, &pos));
  for (uint16_t t = 0; t < tags; ++t) {
    SCOOP_ASSIGN_OR_RETURN(std::string key, GetString(data, &pos));
    SCOOP_ASSIGN_OR_RETURN(std::string value, GetString(data, &pos));
    image.exif[std::move(key)] = std::move(value);
  }
  if (!with_pixels) return image;
  if (pos + image.PixelBytes() > data.size()) {
    return Status::InvalidArgument("SIMG pixel payload truncated");
  }
  image.pixels = std::string(data.substr(pos, image.PixelBytes()));
  return image;
}

}  // namespace

std::string EncodeImage(const SimpleImage& image) {
  std::string out(kMagic, sizeof(kMagic));
  PutU16(&out, image.width);
  PutU16(&out, image.height);
  out.push_back(static_cast<char>(image.channels));
  PutU16(&out, static_cast<uint16_t>(image.exif.size()));
  for (const auto& [key, value] : image.exif) {
    PutU16(&out, static_cast<uint16_t>(key.size()));
    out += key;
    PutU16(&out, static_cast<uint16_t>(value.size()));
    out += value;
  }
  std::string pixels = image.pixels;
  pixels.resize(image.PixelBytes(), '\0');
  out += pixels;
  return out;
}

Result<SimpleImage> DecodeImage(std::string_view data) {
  return DecodeInternal(data, /*with_pixels=*/true);
}

Result<SimpleImage> DecodeImageHeader(std::string_view data) {
  return DecodeInternal(data, /*with_pixels=*/false);
}

}  // namespace scoop
