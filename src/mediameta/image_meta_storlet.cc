#include "mediameta/image_meta_storlet.h"

#include "common/strings.h"
#include "csv/record_reader.h"
#include "mediameta/image_format.h"

namespace scoop {

Status ImageMetaStorlet::Invoke(StorletInputStream& input,
                                StorletOutputStream& output,
                                const StorletParams& params,
                                StorletLogger& logger) {
  SCOOP_ASSIGN_OR_RETURN(SimpleImage image,
                         DecodeImageHeader(input.Remaining()));
  std::vector<std::string> fields = {
      std::to_string(image.width), std::to_string(image.height),
      std::to_string(image.channels)};
  auto tags_it = params.find("tags");
  if (tags_it != params.end() && !Trim(tags_it->second).empty()) {
    for (std::string_view tag : Split(tags_it->second, ',')) {
      auto it = image.exif.find(std::string(Trim(tag)));
      fields.push_back(it == image.exif.end() ? "" : it->second);
    }
  }
  std::vector<std::string_view> views(fields.begin(), fields.end());
  std::string record;
  WriteCsvRecord(views, &record);
  output.Write(record);
  logger.Emit(StrFormat("imagemeta: %zu-byte object -> %zu-byte record",
                        input.Remaining().size() + input.bytes_consumed(),
                        record.size()));
  output.SetMetadata("width", std::to_string(image.width));
  output.SetMetadata("height", std::to_string(image.height));
  return Status::OK();
}

}  // namespace scoop
