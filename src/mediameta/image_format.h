#ifndef SCOOP_MEDIAMETA_IMAGE_FORMAT_H_
#define SCOOP_MEDIAMETA_IMAGE_FORMAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scoop {

// A toy binary image container standing in for JPEG in the paper's §VII
// vision ("bringing EXIF metadata from JPEGs"): an object store holds
// arbitrary binary objects, and a pushdown filter can extract the tiny
// structured head of a large binary body so only metadata crosses the
// network.
//
// Layout: magic "SIMG", u16 width, u16 height, u8 channels, u16 tag
// count, then per tag (u16 key len, key, u16 value len, value), then
// width*height*channels pixel bytes.
struct SimpleImage {
  uint16_t width = 0;
  uint16_t height = 0;
  uint8_t channels = 1;
  std::map<std::string, std::string> exif;  // e.g. camera, taken, gps
  std::string pixels;                       // sized width*height*channels

  size_t PixelBytes() const {
    return static_cast<size_t>(width) * height * channels;
  }
};

// Serializes `image` (pads/truncates pixels to the declared size).
std::string EncodeImage(const SimpleImage& image);

// Parses a SIMG object; validates sizes and magic.
Result<SimpleImage> DecodeImage(std::string_view data);

// Parses only the header + EXIF block without touching the pixel payload
// (what the metadata storlet does: O(header), not O(object)).
Result<SimpleImage> DecodeImageHeader(std::string_view data);

}  // namespace scoop

#endif  // SCOOP_MEDIAMETA_IMAGE_FORMAT_H_
