#ifndef SCOOP_WORKLOAD_QUERIES_H_
#define SCOOP_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

namespace scoop {

// One of the data-intensive queries GridPocket data scientists run
// (paper Table I), with the selectivity percentages the paper reports.
struct GridPocketQuery {
  std::string name;
  std::string description;
  std::string sql;
  // Paper-reported selectivities (fractions, not percents).
  double paper_column_selectivity;
  double paper_row_selectivity;
  double paper_data_selectivity;
};

// The seven Table I queries, verbatim except for the table name, which is
// always `largeMeter` (as in the paper).
const std::vector<GridPocketQuery>& GridPocketQueries();

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_QUERIES_H_
