#ifndef SCOOP_WORKLOAD_QUERIES_H_
#define SCOOP_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace scoop {

// One of the data-intensive queries GridPocket data scientists run
// (paper Table I), with the selectivity percentages the paper reports.
struct GridPocketQuery {
  std::string name;
  std::string description;
  std::string sql;
  // Paper-reported selectivities (fractions, not percents).
  double paper_column_selectivity;
  double paper_row_selectivity;
  double paper_data_selectivity;
};

// The seven Table I queries, verbatim except for the table name, which is
// always `largeMeter` (as in the paper).
const std::vector<GridPocketQuery>& GridPocketQueries();

// --- Repeated-query mix -----------------------------------------------------
// Real analytic dashboards re-issue a small set of hot queries against
// slowly-changing data — exactly the traffic the proxy result cache
// amortizes. RepeatedQueryMix models that: a pool of distinct query
// variants (the Table I queries parameterized by month) sampled with a
// zipfian popularity distribution, so rank-0 dominates and the tail is
// long. Seeded and fully deterministic, like every workload generator in
// the repo.

struct QueryMixConfig {
  uint64_t seed = 1;
  // YCSB-default skew; larger = hotter head.
  double zipf_exponent = 0.99;
  // Size of the distinct-variant pool; 0 uses just the seven base
  // queries. Larger pools substitute months 01..12 into the base queries
  // (7 x 12 = 84 variants max).
  int distinct_queries = 0;
};

// One sampled variant: a base Table I query with its month substituted.
struct MixedQuery {
  std::string name;  // e.g. "ShowMapCons@2015-03"
  std::string sql;
  int base_index = 0;  // index into GridPocketQueries()
};

class RepeatedQueryMix {
 public:
  explicit RepeatedQueryMix(const QueryMixConfig& config = QueryMixConfig());

  // The next query, zipf-distributed over the variant pool (rank 0 = the
  // hottest variant). The reference stays valid for the mix's lifetime.
  const MixedQuery& Next();

  const std::vector<MixedQuery>& variants() const { return variants_; }

  // Expected fraction of draws landing on the `top_k` hottest variants
  // under the configured zipf — the ceiling a result cache holding k
  // results can hit on this mix.
  double ExpectedHitMass(size_t top_k) const;

 private:
  std::vector<MixedQuery> variants_;
  std::vector<double> mass_;  // normalized zipf pmf by rank
  std::unique_ptr<ZipfSampler> sampler_;
};

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_QUERIES_H_
