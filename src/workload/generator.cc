#include "workload/generator.h"

#include "common/hash.h"
#include "common/strings.h"
#include "csv/record_reader.h"
#include "storlets/headers.h"

namespace scoop {

namespace {

struct CityInfo {
  const char* city;
  const char* state;
  const char* region;
  double lat;
  double lon;
};

// European deployment mirroring the paper's description, plus two 'U*'
// states so ShowPiemonth's `state LIKE 'U%'` predicate selects a small
// population as it does in the original data.
constexpr CityInfo kCities[] = {
    {"Rotterdam", "NLD", "west", 51.9225, 4.47917},
    {"Amsterdam", "NLD", "west", 52.3676, 4.90414},
    {"Paris", "FRA", "west", 48.8566, 2.35222},
    {"Nice", "FRA", "south", 43.7102, 7.26195},
    {"Lyon", "FRA", "south", 45.7640, 4.83566},
    {"Barcelona", "ESP", "south", 41.3874, 2.16864},
    {"Madrid", "ESP", "south", 40.4168, -3.70379},
    {"Berlin", "DEU", "east", 52.5200, 13.40495},
    {"Munich", "DEU", "east", 48.1351, 11.58198},
    {"Warsaw", "POL", "east", 52.2297, 21.01222},
    {"Kyiv", "UKR", "east", 50.4501, 30.52340},
    {"Liverpool", "UK", "west", 53.4084, -2.99160},
};
constexpr int kNumCities = static_cast<int>(sizeof(kCities) / sizeof(kCities[0]));

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

}  // namespace

std::string FormatMeterDate(int64_t minutes_since_jan1) {
  int64_t minute = minutes_since_jan1 % 60;
  int64_t hours = minutes_since_jan1 / 60;
  int64_t hour = hours % 24;
  int64_t days = hours / 24;
  int month = 0;
  while (month < 11 && days >= kDaysPerMonth[month]) {
    days -= kDaysPerMonth[month];
    ++month;
  }
  // Days beyond 2015 clamp into December (configs should stay within a year).
  if (days > 30) days = 30;
  return StrFormat("2015-%02d-%02d %02d:%02d:00", month + 1,
                   static_cast<int>(days) + 1, static_cast<int>(hour),
                   static_cast<int>(minute));
}

GridPocketGenerator::GridPocketGenerator(GeneratorConfig config)
    : config_(config) {
  if (config_.num_meters < 1) config_.num_meters = 1;
  if (config_.readings_per_meter < 1) config_.readings_per_meter = 1;
}

Schema GridPocketGenerator::MeterSchema() {
  return Schema({
      {"vid", ColumnType::kInt64},
      {"date", ColumnType::kString},
      {"index", ColumnType::kInt64},
      {"sumHC", ColumnType::kDouble},
      {"sumHP", ColumnType::kDouble},
      {"lat", ColumnType::kDouble},
      {"long", ColumnType::kDouble},
      {"city", ColumnType::kString},
      {"state", ColumnType::kString},
      {"region", ColumnType::kString},
  });
}

Row GridPocketGenerator::MakeRow(int64_t row_index) const {
  int64_t meter = row_index % config_.num_meters;
  int64_t step = row_index / config_.num_meters;

  uint64_t meter_hash = Mix64(config_.seed ^ static_cast<uint64_t>(meter));
  const CityInfo& city = kCities[meter_hash % kNumCities];

  // Per-meter consumption rate (Wh per 10 minutes) plus per-reading jitter.
  double rate = 40.0 + static_cast<double>(meter_hash % 1000) / 10.0;
  uint64_t step_hash =
      Mix64(meter_hash ^ (static_cast<uint64_t>(step) * 0x9e3779b97f4a7c15ULL));
  double jitter = static_cast<double>(step_hash % 200) / 10.0;

  int64_t minutes = step * 10;
  int64_t hour = (minutes / 60) % 24;
  bool peak = hour >= 7 && hour < 22;

  double index = rate * static_cast<double>(step) + jitter;
  // Peak hours accumulate faster: ~15/24 of the day is peak.
  double sum_hp = index * (peak ? 0.68 : 0.62);
  double sum_hc = index - sum_hp;

  double lat = city.lat + static_cast<double>(meter_hash % 97) / 1000.0;
  double lon = city.lon + static_cast<double>((meter_hash >> 8) % 97) / 1000.0;

  Row row;
  row.reserve(10);
  row.push_back(Value(static_cast<int64_t>(meter + 1000)));
  row.push_back(Value(FormatMeterDate(minutes)));
  row.push_back(Value(static_cast<int64_t>(index)));
  row.push_back(Value(sum_hc));
  row.push_back(Value(sum_hp));
  row.push_back(Value(lat));
  row.push_back(Value(lon));
  row.push_back(Value(std::string(city.city)));
  row.push_back(Value(std::string(city.state)));
  row.push_back(Value(std::string(city.region)));
  return row;
}

void GridPocketGenerator::AppendCsv(int64_t first_row, int64_t count,
                                    std::string* out) const {
  int64_t end = std::min(first_row + count, TotalRows());
  for (int64_t r = first_row; r < end; ++r) {
    WriteCsvRow(MakeRow(r), out);
  }
}

std::vector<Row> GridPocketGenerator::MakeAllRows() const {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(TotalRows()));
  for (int64_t r = 0; r < TotalRows(); ++r) rows.push_back(MakeRow(r));
  return rows;
}

Status GridPocketGenerator::Upload(SwiftClient* client,
                                   const std::string& container,
                                   const std::string& prefix, int num_objects,
                                   bool etl_on_upload) const {
  if (num_objects < 1) num_objects = 1;
  SCOOP_RETURN_IF_ERROR(client->CreateContainer(container));
  int64_t total = TotalRows();
  int64_t per_object = (total + num_objects - 1) / num_objects;
  for (int k = 0; k < num_objects; ++k) {
    int64_t first = static_cast<int64_t>(k) * per_object;
    if (first >= total) break;
    std::string data;
    AppendCsv(first, per_object, &data);
    Headers headers;
    if (etl_on_upload) {
      headers.Set(kRunStorletHeader, "etlstorlet");
      headers.Set(std::string(kStorletParamPrefix) + "Schema",
                  MeterSchema().ToSpec());
    }
    SCOOP_RETURN_IF_ERROR(client->PutObject(
        container, StrFormat("%s%04d.csv", prefix.c_str(), k),
        std::move(data), headers));
  }
  return Status::OK();
}

}  // namespace scoop
