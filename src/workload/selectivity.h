#ifndef SCOOP_WORKLOAD_SELECTIVITY_H_
#define SCOOP_WORKLOAD_SELECTIVITY_H_

#include <string>

#include "common/result.h"
#include "sql/schema.h"

namespace scoop {

// Measured selectivities of a query against a concrete CSV dataset —
// the paper's Table I metrics:
//   column selectivity — fraction of the byte volume belonging to columns
//     the query does not need;
//   row selectivity    — fraction of rows the WHERE discards;
//   data selectivity   — fraction of bytes that need not be ingested
//     (rows discarded entirely + unneeded columns of surviving rows).
struct SelectivityReport {
  double column_selectivity = 0.0;
  double row_selectivity = 0.0;
  double data_selectivity = 0.0;
  int64_t rows_total = 0;
  int64_t rows_kept = 0;
  uint64_t bytes_total = 0;
  uint64_t bytes_kept = 0;
};

// Evaluates `sql` row-by-row over headerless CSV `data` with `schema`,
// using the real Catalyst extraction and filter evaluation paths.
Result<SelectivityReport> MeasureSelectivity(const std::string& sql,
                                             const Schema& schema,
                                             std::string_view data);

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_SELECTIVITY_H_
