#include "workload/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storlets/headers.h"

namespace scoop {
namespace {

using Clock = std::chrono::steady_clock;

// Inter-arrival gaps in nanoseconds for the whole schedule, seeded.
std::vector<int64_t> BuildSchedule(const OpenLoopConfig& config) {
  std::vector<int64_t> arrival_ns;
  arrival_ns.reserve(static_cast<size_t>(std::max(config.total_requests, 0)));
  Rng rng(config.seed);
  const double mean_gap_ns = 1e9 / std::max(config.rate_per_s, 1e-9);
  double t = 0.0;
  for (int i = 0; i < config.total_requests; ++i) {
    arrival_ns.push_back(static_cast<int64_t>(t));
    if (config.poisson) {
      // Exponential gap: -ln(1-U) * mean. U < 1 guaranteed by NextDouble.
      t += -std::log(1.0 - rng.NextDouble()) * mean_gap_ns;
    } else {
      t += mean_gap_ns;
    }
  }
  return arrival_ns;
}

}  // namespace

OpenLoopDriver::OpenLoopDriver(const OpenLoopConfig& config)
    : config_(config) {}

OpenLoopReport OpenLoopDriver::Run(SwiftClient* client,
                                   const MakeRequestFn& make_request) const {
  const std::vector<int64_t> arrival_ns = BuildSchedule(config_);

  ExponentialHistogram latency;
  std::atomic<int> next_index{0};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> shed_with_hint{0};
  std::atomic<int64_t> errors{0};

  const Clock::time_point start = Clock::now();
  auto worker = [&] {
    for (;;) {
      int i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int>(arrival_ns.size())) return;
      const Clock::time_point scheduled =
          start + std::chrono::nanoseconds(arrival_ns[static_cast<size_t>(i)]);
      // Open loop: wait for the scheduled release even if earlier
      // requests are still in flight; never wait to "catch up" — a late
      // pickup means the server is behind, and the backlog is charged to
      // the response's latency below.
      std::this_thread::sleep_until(scheduled);

      Request request = make_request(i);
      const bool wanted_pushdown = request.headers.Has(kRunStorletHeader);
      if (config_.deadline_us > 0) {
        request.headers.Set(kQosDeadlineHeader,
                            std::to_string(config_.deadline_us));
      }
      HttpResponse response = client->Send(std::move(request));
      std::string body = response.TakeBody();  // full drain, like a reader

      const Clock::time_point done = Clock::now();
      latency.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                         done - scheduled)
                         .count());

      if (response.status == 503) {
        shed.fetch_add(1, std::memory_order_relaxed);
        if (RetryAfterMillis(response.headers)) {
          shed_with_hint.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (response.ok()) {
        const bool served_raw =
            response.headers.GetOr(kQosDecisionHeader, "") == "degraded" ||
            (wanted_pushdown && !response.headers.Has(kStorletExecutedHeader));
        if (served_raw) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        } else {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  const int workers = std::max(config_.workers, 1);
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  OpenLoopReport report;
  report.ok = ok.load();
  report.degraded = degraded.load();
  report.shed = shed.load();
  report.shed_with_retry_after = shed_with_hint.load();
  report.errors = errors.load();
  report.latency_us = latency.Take();
  report.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (report.duration_s > 0) {
    report.goodput_per_s =
        static_cast<double>(report.ok + report.degraded) / report.duration_s;
  }
  return report;
}

}  // namespace scoop
