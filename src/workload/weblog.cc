#include "workload/weblog.h"

#include <cmath>

#include "common/hash.h"
#include "common/strings.h"
#include "csv/record_reader.h"
#include "workload/generator.h"

namespace scoop {

namespace {

constexpr const char* kMethods[] = {"GET", "GET", "GET", "GET", "POST",
                                    "PUT", "HEAD", "DELETE"};
constexpr const char* kAgents[] = {
    "curl/7.64", "python-requests/2.25", "Mozilla/5.0", "Go-http-client/1.1",
    "collectd/5.4"};

// Zipf-ish rank from a hash: rank r is chosen with weight ~ 1/(r+1).
int SkewedIndex(uint64_t h, int n) {
  // Map a uniform hash to an approximately Zipf(1) rank without tables:
  // r = n^(u) - 1 concentrates small ranks.
  double u = static_cast<double>(h % 100000) / 100000.0;
  double r = std::pow(static_cast<double>(n), u) - 1.0;
  int idx = static_cast<int>(r);
  return idx >= n ? n - 1 : idx;
}

}  // namespace

WeblogGenerator::WeblogGenerator(WeblogConfig config) : config_(config) {
  if (config_.num_requests < 1) config_.num_requests = 1;
  if (config_.num_hosts < 1) config_.num_hosts = 1;
  if (config_.num_paths < 1) config_.num_paths = 1;
}

Schema WeblogGenerator::LogSchema() {
  return Schema({
      {"ts", ColumnType::kString},
      {"host", ColumnType::kString},
      {"method", ColumnType::kString},
      {"path", ColumnType::kString},
      {"status", ColumnType::kInt64},
      {"bytes", ColumnType::kInt64},
      {"latency_ms", ColumnType::kDouble},
      {"agent", ColumnType::kString},
  });
}

Row WeblogGenerator::MakeRow(int64_t index) const {
  uint64_t h = Mix64(config_.seed ^ static_cast<uint64_t>(index));
  uint64_t h2 = Mix64(h + 1);
  uint64_t h3 = Mix64(h + 2);

  // One request per second starting 2015-01-01.
  std::string ts = FormatMeterDate(index / 60);

  int host = SkewedIndex(h, config_.num_hosts);
  int path = SkewedIndex(h2, config_.num_paths);
  const char* method = kMethods[h3 % 8];

  // ~1% server errors, ~4% client errors, rest 200/304.
  int64_t status;
  uint64_t roll = h3 % 1000;
  if (roll < 10) {
    status = 500 + static_cast<int64_t>(roll % 4);
  } else if (roll < 50) {
    status = roll % 2 ? 404 : 403;
  } else if (roll < 200) {
    status = 304;
  } else {
    status = 200;
  }
  int64_t bytes = status == 304 ? 0
                                : static_cast<int64_t>(200 + (h2 % 40000));
  double latency = 1.0 + static_cast<double>(h % 500) / 10.0 +
                   (status >= 500 ? 250.0 : 0.0);

  Row row;
  row.reserve(8);
  row.push_back(Value(std::move(ts)));
  row.push_back(Value(StrFormat("10.0.%d.%d", host / 250, host % 250)));
  row.push_back(Value(std::string(method)));
  row.push_back(Value(StrFormat("/api/v1/resource/%d", path)));
  row.push_back(Value(status));
  row.push_back(Value(bytes));
  row.push_back(Value(latency));
  row.push_back(Value(std::string(kAgents[h % 5])));
  return row;
}

void WeblogGenerator::AppendCsv(int64_t first_row, int64_t count,
                                std::string* out) const {
  int64_t end = std::min(first_row + count, TotalRows());
  for (int64_t r = first_row; r < end; ++r) WriteCsvRow(MakeRow(r), out);
}

Status WeblogGenerator::Upload(SwiftClient* client,
                               const std::string& container,
                               const std::string& prefix,
                               int num_objects) const {
  if (num_objects < 1) num_objects = 1;
  SCOOP_RETURN_IF_ERROR(client->CreateContainer(container));
  int64_t per_object = (TotalRows() + num_objects - 1) / num_objects;
  for (int k = 0; k < num_objects; ++k) {
    int64_t first = static_cast<int64_t>(k) * per_object;
    if (first >= TotalRows()) break;
    std::string data;
    AppendCsv(first, per_object, &data);
    SCOOP_RETURN_IF_ERROR(client->PutObject(
        container, StrFormat("%s%04d.log", prefix.c_str(), k),
        std::move(data)));
  }
  return Status::OK();
}

}  // namespace scoop
