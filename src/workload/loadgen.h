// Open-loop arrival driver (the QoS verification harness of DESIGN.md
// §3k): requests are released on a precomputed, seeded arrival schedule
// at a configured rate — NOT when the previous response returns — so a
// slow server builds a backlog and the measured latency includes the
// queueing the client actually suffers (the coordinated-omission-free
// methodology open-loop load generators exist for). Latency is clocked
// from each request's *scheduled* arrival through full body drain.
//
// The driver is transport-agnostic: it drives any SwiftClient (simnet or
// TCP) with requests built by a caller-supplied factory, typically the
// zipfian RepeatedQueryMix rendered as pushdown GETs. Responses are
// classified against the QoS shed ladder: ok (full pushdown), degraded
// (served raw — X-Scoop-Qos: degraded, or the requested storlet did not
// run), shed (503), or error.
#ifndef SCOOP_WORKLOAD_LOADGEN_H_
#define SCOOP_WORKLOAD_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/metrics.h"
#include "objectstore/cluster.h"
#include "objectstore/http.h"

namespace scoop {

struct OpenLoopConfig {
  // Arrival rate of the schedule (requests per second, > 0).
  double rate_per_s = 100.0;
  int total_requests = 200;
  uint64_t seed = 1;
  // Poisson arrivals (exponential gaps) vs. a uniform tick. Poisson is
  // the honest model for independent dashboard users.
  bool poisson = true;
  // Concurrent senders draining the schedule. Enough that the schedule,
  // not worker starvation, is the limiting factor at the target rate.
  int workers = 8;
  // When > 0, stamped on every request as X-Scoop-Deadline-Us so the
  // QoS admission ladder sheds predicted deadline misses.
  int64_t deadline_us = 0;
};

// What one open-loop run observed. Counts partition total_requests.
struct OpenLoopReport {
  int64_t ok = 0;        // 2xx with the requested storlet executed
  int64_t degraded = 0;  // 2xx served raw (the degrade rung)
  int64_t shed = 0;      // 503
  int64_t shed_with_retry_after = 0;  // 503s carrying the backoff hint
  int64_t errors = 0;    // anything else
  // Scheduled-arrival -> body-drained, microseconds (includes backlog).
  ExponentialHistogram::Snapshot latency_us;
  double duration_s = 0.0;
  // Successfully answered requests (ok + degraded) per wall second.
  double goodput_per_s = 0.0;
};

class OpenLoopDriver {
 public:
  // Builds the request for arrival `index` in [0, total_requests). Must
  // be callable concurrently from the worker pool.
  using MakeRequestFn = std::function<Request(int index)>;

  explicit OpenLoopDriver(const OpenLoopConfig& config);

  // Replays the whole schedule through `client`. Blocks until every
  // response is drained; deterministic schedule, real wall-clock sends.
  OpenLoopReport Run(SwiftClient* client,
                     const MakeRequestFn& make_request) const;

 private:
  OpenLoopConfig config_;
};

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_LOADGEN_H_
