#ifndef SCOOP_WORKLOAD_GENERATOR_H_
#define SCOOP_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "objectstore/cluster.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace scoop {

// Configuration of the synthetic GridPocket dataset. The paper's datasets
// are energy readings from 10K smart meters, 10 columns, one row per meter
// per 10 minutes; the authors published a generator mimicking them, and
// this is the C++ equivalent. Rows are a pure function of (seed, row
// index), so any slice of the dataset can be produced independently and
// reproducibly.
struct GeneratorConfig {
  int num_meters = 200;
  int readings_per_meter = 432;  // 3 days at 10-minute cadence
  uint64_t seed = 42;
};

// The ten-column meter reading schema:
//   vid:int64      meter id
//   date:string    "2015-MM-DD HH:MM:SS" (readings start 2015-01-01)
//   index:int64    cumulative consumption (Wh)
//   sumHC:double   cumulative off-peak ("heures creuses") consumption
//   sumHP:double   cumulative peak ("heures pleines") consumption
//   lat:double     meter latitude
//   long:double    meter longitude
//   city:string    e.g. Rotterdam, Paris, ...
//   state:string   country code (FRA, NLD, UKR, ...)
//   region:string  coarse region label
class GridPocketGenerator {
 public:
  explicit GridPocketGenerator(GeneratorConfig config);

  static Schema MeterSchema();

  const GeneratorConfig& config() const { return config_; }
  int64_t TotalRows() const {
    return static_cast<int64_t>(config_.num_meters) *
           config_.readings_per_meter;
  }

  // The typed row at `row_index` (readings are interleaved: row r is meter
  // r % num_meters at time step r / num_meters).
  Row MakeRow(int64_t row_index) const;

  // Appends rows [first_row, first_row + count) as headerless CSV.
  void AppendCsv(int64_t first_row, int64_t count, std::string* out) const;

  // Materializes the whole dataset as typed rows (small configs only).
  std::vector<Row> MakeAllRows() const;

  // Uploads the dataset as `num_objects` roughly equal CSV objects named
  // "<prefix><k>" into `container` (creating it), optionally running the
  // ETL storlet on the upload path.
  Status Upload(SwiftClient* client, const std::string& container,
                const std::string& prefix, int num_objects,
                bool etl_on_upload = false) const;

 private:
  GeneratorConfig config_;
};

// Renders minutes-since-2015-01-01T00:00 as "2015-MM-DD HH:MM:SS"
// (the generator covers 2015 only).
std::string FormatMeterDate(int64_t minutes_since_jan1);

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_GENERATOR_H_
