#include "workload/queries.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace scoop {

const std::vector<GridPocketQuery>& GridPocketQueries() {
  static const std::vector<GridPocketQuery>& queries =
      *new std::vector<GridPocketQuery>{
          {"ShowMapCons",
           "Per-meter aggregated consumption for a heatmap / per-state "
           "aggregated display",
           "SELECT vid, sum(index) as max, first_value(lat) as lat, "
           "first_value(long) as long, first_value(state) as state "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 7), vid "
           "ORDER BY SUBSTRING(date, 0, 7), vid",
           0.9200, 0.9962, 0.9997},
          {"ShowMapMeter",
           "Each meter with its info (city, id, ...) for a cluster map",
           "SELECT vid, sum(index) as max, first_value(city) as city, "
           "first_value(lat) as lat, first_value(long) as long, "
           "first_value(state) as state "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 7), vid "
           "ORDER BY SUBSTRING(date, 0, 7), vid",
           0.9200, 0.9954, 0.9997},
          {"ShowMapHeatmonth",
           "Daily data for a given month for a per-day slider display",
           "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, "
           "first_value(lat) as lat, first_value(long) as long "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9200, 0.9954, 0.9996},
          {"Showgraphcons",
           "Consumption of meters in Rotterdam for Jan. 2015",
           "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid "
           "FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE "
           "'2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9999, 0.9955, 0.9999},
          {"ShowPiemonth",
           "Consumption for a specific subset of state consumption",
           "SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, "
           "sum(index) as max "
           "FROM largeMeter WHERE state LIKE 'U%' AND date LIKE '2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), state "
           "ORDER BY SUBSTRING(date, 0, 10), state",
           0.9999, 0.9999, 0.9999},
          {"ShowGraphHCHP",
           "Peak versus shallow hour consumption",
           "SELECT SUBSTRING(date, 0, 10) as sDate, vid, "
           "min(sumHC) as minHC, max(sumHC) as maxHC, "
           "min(sumHP) as minHP, max(sumHP) as maxHP "
           "FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9999, 0.9994, 0.9999},
          {"Showday",
           "Consumption of any specified hour of a given month",
           "SELECT SUBSTRING(date, 0, 13) as sDate, sum(index) as max, vid "
           "FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE "
           "'2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 13), vid "
           "ORDER BY SUBSTRING(date, 0, 13), vid",
           0.9999, 0.9999, 0.9999},
      };
  return queries;
}

namespace {

// Replaces every "2015-01" in a base query with another month. The base
// queries only mention January, so this parameterizes both the "LIKE
// '2015-01%'" and "LIKE '2015-01-%'" spellings at once.
std::string SubstituteMonth(const std::string& sql, int month) {
  const std::string from = "2015-01";
  std::string to = StrFormat("2015-%02d", month);
  std::string out;
  out.reserve(sql.size());
  size_t pos = 0;
  while (true) {
    size_t hit = sql.find(from, pos);
    if (hit == std::string::npos) {
      out.append(sql, pos, std::string::npos);
      return out;
    }
    out.append(sql, pos, hit - pos);
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace

RepeatedQueryMix::RepeatedQueryMix(const QueryMixConfig& config) {
  const std::vector<GridPocketQuery>& bases = GridPocketQueries();
  const int base_count = static_cast<int>(bases.size());
  int want = config.distinct_queries > 0 ? config.distinct_queries
                                         : base_count;
  want = std::clamp(want, 1, base_count * 12);
  // Month-major interleaving: the pool covers every base query before it
  // starts adding month variants, so small pools stay representative.
  variants_.reserve(want);
  for (int month = 1; month <= 12 && static_cast<int>(variants_.size()) < want;
       ++month) {
    for (int b = 0; b < base_count && static_cast<int>(variants_.size()) < want;
         ++b) {
      MixedQuery q;
      q.name = StrFormat("%s@2015-%02d", bases[b].name.c_str(), month);
      q.sql = SubstituteMonth(bases[b].sql, month);
      q.base_index = b;
      variants_.push_back(std::move(q));
    }
  }
  double total = 0.0;
  mass_.reserve(variants_.size());
  for (size_t r = 0; r < variants_.size(); ++r) {
    mass_.push_back(1.0 /
                    std::pow(static_cast<double>(r + 1), config.zipf_exponent));
    total += mass_.back();
  }
  for (double& m : mass_) m /= total;
  sampler_ = std::make_unique<ZipfSampler>(variants_.size(),
                                           config.zipf_exponent, config.seed);
}

const MixedQuery& RepeatedQueryMix::Next() {
  return variants_[sampler_->Next()];
}

double RepeatedQueryMix::ExpectedHitMass(size_t top_k) const {
  double sum = 0.0;
  for (size_t r = 0; r < std::min(top_k, mass_.size()); ++r) sum += mass_[r];
  return sum;
}

}  // namespace scoop
