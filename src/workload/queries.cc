#include "workload/queries.h"

namespace scoop {

const std::vector<GridPocketQuery>& GridPocketQueries() {
  static const std::vector<GridPocketQuery>& queries =
      *new std::vector<GridPocketQuery>{
          {"ShowMapCons",
           "Per-meter aggregated consumption for a heatmap / per-state "
           "aggregated display",
           "SELECT vid, sum(index) as max, first_value(lat) as lat, "
           "first_value(long) as long, first_value(state) as state "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 7), vid "
           "ORDER BY SUBSTRING(date, 0, 7), vid",
           0.9200, 0.9962, 0.9997},
          {"ShowMapMeter",
           "Each meter with its info (city, id, ...) for a cluster map",
           "SELECT vid, sum(index) as max, first_value(city) as city, "
           "first_value(lat) as lat, first_value(long) as long, "
           "first_value(state) as state "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 7), vid "
           "ORDER BY SUBSTRING(date, 0, 7), vid",
           0.9200, 0.9954, 0.9997},
          {"ShowMapHeatmonth",
           "Daily data for a given month for a per-day slider display",
           "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, "
           "first_value(lat) as lat, first_value(long) as long "
           "FROM largeMeter WHERE date LIKE '2015-01%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9200, 0.9954, 0.9996},
          {"Showgraphcons",
           "Consumption of meters in Rotterdam for Jan. 2015",
           "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid "
           "FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE "
           "'2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9999, 0.9955, 0.9999},
          {"ShowPiemonth",
           "Consumption for a specific subset of state consumption",
           "SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, "
           "sum(index) as max "
           "FROM largeMeter WHERE state LIKE 'U%' AND date LIKE '2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), state "
           "ORDER BY SUBSTRING(date, 0, 10), state",
           0.9999, 0.9999, 0.9999},
          {"ShowGraphHCHP",
           "Peak versus shallow hour consumption",
           "SELECT SUBSTRING(date, 0, 10) as sDate, vid, "
           "min(sumHC) as minHC, max(sumHC) as maxHC, "
           "min(sumHP) as minHP, max(sumHP) as maxHP "
           "FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 10), vid "
           "ORDER BY SUBSTRING(date, 0, 10), vid",
           0.9999, 0.9994, 0.9999},
          {"Showday",
           "Consumption of any specified hour of a given month",
           "SELECT SUBSTRING(date, 0, 13) as sDate, sum(index) as max, vid "
           "FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE "
           "'2015-01-%' "
           "GROUP BY SUBSTRING(date, 0, 13), vid "
           "ORDER BY SUBSTRING(date, 0, 13), vid",
           0.9999, 0.9999, 0.9999},
      };
  return queries;
}

}  // namespace scoop
