#include "workload/selectivity.h"

#include "csv/record_reader.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/parser.h"

namespace scoop {

Result<SelectivityReport> MeasureSelectivity(const std::string& sql,
                                             const Schema& schema,
                                             std::string_view data) {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  SCOOP_ASSIGN_OR_RETURN(auto plan, PhysicalPlan::Create(stmt, schema));

  std::vector<int> required;
  std::vector<bool> is_required(schema.size(), false);
  for (const std::string& name : plan->required_columns()) {
    int idx = schema.IndexOf(name);
    required.push_back(idx);
    if (idx >= 0) is_required[static_cast<size_t>(idx)] = true;
  }

  SelectivityReport report;
  uint64_t required_bytes_all_rows = 0;  // projected volume over all rows
  CsvRecordParser parser;
  size_t pos = 0;
  Row scan_row;
  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? data.substr(pos)
                                : data.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? data.size() : nl + 1;
    if (line.empty()) continue;
    uint64_t line_bytes = line.size() + 1;  // include the newline
    report.bytes_total += line_bytes;
    ++report.rows_total;

    const std::vector<std::string_view>& fields = parser.Parse(line);
    if (fields.size() != schema.size()) continue;

    // Projected record size: required fields plus separators and newline.
    uint64_t projected = required.empty() ? 0 : required.size();  // commas+\n
    for (int idx : required) {
      if (idx >= 0) projected += fields[static_cast<size_t>(idx)].size();
    }
    required_bytes_all_rows += projected;

    // Row filter: the real pushed filter + residual conjuncts.
    bool passes = plan->pushed_filter().Matches(fields, schema);
    if (passes) {
      scan_row.clear();
      for (size_t i = 0; i < required.size(); ++i) {
        int idx = required[i];
        scan_row.push_back(
            idx >= 0 ? Value::FromField(fields[static_cast<size_t>(idx)],
                                        schema.column(static_cast<size_t>(idx))
                                            .type)
                     : Value::Null());
      }
      PartialResult scratch;
      plan->ProcessRow(scan_row, /*filters_already_applied=*/true, &scratch);
      passes = scratch.rows_passed > 0;
    }
    if (passes) {
      ++report.rows_kept;
      report.bytes_kept += projected;
    }
  }

  if (report.rows_total > 0) {
    report.row_selectivity =
        1.0 - static_cast<double>(report.rows_kept) /
                  static_cast<double>(report.rows_total);
  }
  if (report.bytes_total > 0) {
    report.column_selectivity =
        1.0 - static_cast<double>(required_bytes_all_rows) /
                  static_cast<double>(report.bytes_total);
    report.data_selectivity =
        1.0 - static_cast<double>(report.bytes_kept) /
                  static_cast<double>(report.bytes_total);
  }
  return report;
}

}  // namespace scoop
