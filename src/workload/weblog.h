#ifndef SCOOP_WORKLOAD_WEBLOG_H_
#define SCOOP_WORKLOAD_WEBLOG_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "objectstore/cluster.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace scoop {

// The paper's second motivating workload (§I: "servers and sensors
// autonomously store data 'as is' in object stores ... server logs
// amounting to a few terabytes"): a synthetic web-server access log.
// Like the meter generator, rows are a pure function of (seed, index) so
// any slice is reproducible. Status codes and paths are Zipf-skewed, so
// error-hunting queries ("status >= 500") are highly selective — the
// pushdown sweet spot.
struct WeblogConfig {
  int64_t num_requests = 100000;
  int num_hosts = 50;
  int num_paths = 200;
  uint64_t seed = 7;
};

class WeblogGenerator {
 public:
  explicit WeblogGenerator(WeblogConfig config);

  // Columns: ts:string, host:string, method:string, path:string,
  // status:int64, bytes:int64, latency_ms:double, agent:string.
  static Schema LogSchema();

  const WeblogConfig& config() const { return config_; }
  int64_t TotalRows() const { return config_.num_requests; }

  Row MakeRow(int64_t index) const;
  void AppendCsv(int64_t first_row, int64_t count, std::string* out) const;

  // Uploads the log as `num_objects` CSV objects "<prefix><k>.log".
  Status Upload(SwiftClient* client, const std::string& container,
                const std::string& prefix, int num_objects) const;

 private:
  WeblogConfig config_;
};

}  // namespace scoop

#endif  // SCOOP_WORKLOAD_WEBLOG_H_
