#include "cache/result_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace scoop {

namespace {
// Separates the key components; never appears in paths, ETags (hex) or
// the canonical fingerprint (header names/values).
constexpr char kKeySep = '\x1f';
}  // namespace

std::string ResultCache::MakeKey(const std::string& object_path,
                                 const std::string& etag,
                                 const std::string& fingerprint) {
  std::string key;
  key.reserve(object_path.size() + etag.size() + fingerprint.size() + 2);
  key.append(object_path);
  key.push_back(kKeySep);
  key.append(etag);
  key.push_back(kKeySep);
  key.append(fingerprint);
  return key;
}

ResultCache::ResultCache(const ResultCacheConfig& config,
                         MetricRegistry* metrics)
    : config_(config),
      per_shard_budget_(config.byte_budget /
                        static_cast<size_t>(std::max(config.shards, 1))),
      max_entry_bytes_(std::min(
          config.max_entry_bytes > 0 ? config.max_entry_bytes
                                     : config.byte_budget / 8,
          per_shard_budget_)),
      enabled_(config.enabled),
      hits_(metrics->GetCounter("cache.hits")),
      misses_(metrics->GetCounter("cache.misses")),
      evictions_(metrics->GetCounter("cache.evictions")),
      invalidations_(metrics->GetCounter("cache.invalidations")),
      bytes_gauge_(metrics->GetGauge("cache.bytes")),
      lookup_us_(metrics->GetHistogram("cache.lookup_us")) {
  int shards = std::max(config.shards, 1);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& object_path) {
  return *shards_[Fnv1a64(object_path) % shards_.size()];
}

size_t ResultCache::EntryBytes(const std::string& key,
                               const CachedResult& result) {
  size_t bytes = key.size();
  if (result.body) bytes += result.body->size();
  for (const auto& [name, value] : result.headers) {
    bytes += name.size() + value.size();
  }
  return bytes;
}

size_t ResultCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  size_t bytes = it->second.bytes;
  shard.lru.erase(it->second.lru_it);
  shard.bytes -= bytes;
  shard.entries.erase(it);
  return bytes;
}

std::optional<CachedResult> ResultCache::Lookup(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Stopwatch watch;
  std::optional<CachedResult> out;
  {
    // The key embeds the object path as its first component, so hashing
    // the path prefix and hashing via ShardFor agree.
    Shard& shard = ShardFor(key.substr(0, key.find(kKeySep)));
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      out = it->second.result;
    }
  }
  lookup_us_->Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
  (out ? hits_ : misses_)->Increment();
  return out;
}

bool ResultCache::Insert(const std::string& key,
                         const std::string& object_path, CachedResult result) {
  if (!enabled()) return false;
  size_t bytes = EntryBytes(key, result);
  if (bytes > max_entry_bytes_) return false;

  int64_t evicted = 0;
  int64_t delta = 0;
  {
    Shard& shard = ShardFor(object_path);
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      delta -= static_cast<int64_t>(EraseLocked(shard, it));
    }
    while (!shard.lru.empty() && shard.bytes + bytes > per_shard_budget_) {
      auto victim = shard.entries.find(shard.lru.back());
      delta -= static_cast<int64_t>(EraseLocked(shard, victim));
      ++evicted;
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.object_path = object_path;
    entry.result = std::move(result);
    entry.bytes = bytes;
    entry.lru_it = shard.lru.begin();
    shard.entries.emplace(key, std::move(entry));
    shard.bytes += bytes;
    delta += static_cast<int64_t>(bytes);
  }
  bytes_gauge_->Add(delta);
  if (evicted > 0) evictions_->Add(evicted);
  return true;
}

int64_t ResultCache::InvalidateObject(const std::string& object_path) {
  int64_t dropped = 0;
  int64_t delta = 0;
  {
    Shard& shard = ShardFor(object_path);
    MutexLock lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->second.object_path == object_path) {
        delta -= static_cast<int64_t>(EraseLocked(shard, it++));
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    bytes_gauge_->Add(delta);
    invalidations_->Add(dropped);
  }
  return dropped;
}

void ResultCache::Clear() {
  int64_t delta = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    delta -= static_cast<int64_t>(shard->bytes);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
  if (delta != 0) bytes_gauge_->Add(delta);
}

}  // namespace scoop
