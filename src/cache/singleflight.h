// Request coalescing for identical pushdown GETs. When N clients issue
// the same (object, ETag, query) concurrently, exactly one — the *leader*
// — executes the storage-side storlet pipeline; its streamed result is
// teed into a fill buffer (for the cache) and fanned out live to every
// *follower* through BoundedByteQueues, so a thundering herd costs one
// storlet invocation (the cache.coalesced counter counts the N-1 saved
// ones).
//
// Protocol (see DESIGN.md §3g):
//  1. Join(key): first caller becomes kLeader and owns a Flight; it must
//     either stream the tee to EOF or Abort(). Concurrent callers block
//     until the leader publishes the response head, then return as
//     kFollower with (status, headers, stream). kBypass tells the caller
//     to execute the request itself, uncoalesced (leader aborted, head
//     overflowed the buffer, or the wait timed out).
//  2. The leader wraps the storage response stream with MakeTee(): every
//     chunk is appended to the fill buffer and written to each follower
//     queue *outside* the flight lock (queue backpressure never holds a
//     flight lock). At EOF the flight publishes trailers, closes the
//     queues, and hands (body, trailer-merged headers) to on_complete —
//     the cache-fill hook.
//  3. A leader error or abandonment poisons every follower queue; the
//     follower-side middleware falls back to executing the request
//     itself (never a hang, never a short body).
//
// Lock ranks: the flight table mutex (lockrank::kSingleflight) may be
// held while acquiring a flight's state mutex (lockrank::kCacheFlight);
// queue mutexes (lockrank::kQueue) rank above both but are in fact only
// ever taken with neither held.
#ifndef SCOOP_CACHE_SINGLEFLIGHT_H_
#define SCOOP_CACHE_SINGLEFLIGHT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytestream.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "objectstore/http.h"

namespace scoop {

class Singleflight {
 public:
  class Flight;

  // How Join() resolved this caller.
  enum class Role {
    kLeader,    // execute the request; tee the response through `flight`
    kFollower,  // response head + fan-out stream are in the ticket
    kBypass,    // coalescing unavailable; execute the request directly
  };

  struct Ticket {
    Role role = Role::kBypass;
    // kLeader: the flight to feed (PublishHead + MakeTee, or Abort).
    std::shared_ptr<Flight> flight;
    // kFollower: the coalesced response.
    int status = 0;
    Headers headers;
    std::shared_ptr<ByteStream> stream;
    std::shared_ptr<const Headers> trailers;
  };

  // `max_buffer_bytes` bounds each flight's fill buffer (results larger
  // than this are fanned out but not buffered for late joiners or the
  // cache); `queue_bytes` bounds each follower queue.
  Singleflight(MetricRegistry* metrics, size_t max_buffer_bytes,
               size_t queue_bytes = 4 * kDefaultStreamChunk);

  Singleflight(const Singleflight&) = delete;
  Singleflight& operator=(const Singleflight&) = delete;

  Ticket Join(const std::string& key) EXCLUDES(mu_);

  // Flights currently in the table (tests).
  int64_t InFlight() const EXCLUDES(mu_);

  // On EOF the tee calls this with the complete body and the response
  // headers with trailers merged — exactly what the uncached path would
  // materialize. Not called when the flight aborted; `overflowed` is true
  // when the body outgrew the fill buffer (body is then null).
  using CompleteFn = std::function<void(
      bool overflowed, std::shared_ptr<const std::string> body,
      Headers headers)>;

  class Flight : public std::enable_shared_from_this<Flight> {
   public:
    Flight(Singleflight* owner, std::string key, size_t max_buffer_bytes,
           size_t queue_bytes);

    // Leader: publishes the response head, waking followers. Must happen
    // before any tee read.
    void PublishHead(int status, const Headers& headers) EXCLUDES(mu_);

    // Leader: wraps the storage response stream. `trailers` is the
    // storage response's trailer map (may be null); `on_complete` runs at
    // EOF, outside every flight/table lock.
    std::shared_ptr<ByteStream> MakeTee(std::shared_ptr<ByteStream> inner,
                                        std::shared_ptr<const Headers> trailers,
                                        CompleteFn on_complete);

    // Leader: the upstream execution failed (bad status, stream error, or
    // the tee was dropped before EOF). Poisons follower queues and wakes
    // head waiters into kBypass. Idempotent; no-op after completion.
    void Abort(Status error) EXCLUDES(mu_);

    const std::string& key() const { return key_; }

   private:
    friend class Singleflight;
    class TeeStream;

    struct Waiter {
      std::unique_ptr<BoundedByteQueue> queue;
      bool alive = true;
    };

    // Follower path of Singleflight::Join. False => kBypass.
    bool JoinAsFollower(Ticket* out) EXCLUDES(mu_);

    // Tee callbacks.
    void Append(std::string_view chunk) EXCLUDES(mu_);
    void CompleteOk() EXCLUDES(mu_);

    Singleflight* const owner_;
    const std::string key_;
    const size_t max_buffer_bytes_;
    const size_t queue_bytes_;

    Mutex mu_{"cache_flight", lockrank::kCacheFlight};
    CondVar head_cv_;
    bool head_published_ GUARDED_BY(mu_) = false;
    int status_ GUARDED_BY(mu_) = 0;
    Headers head_headers_ GUARDED_BY(mu_);
    bool completed_ GUARDED_BY(mu_) = false;
    bool aborted_ GUARDED_BY(mu_) = false;
    // Fill buffer; cleared (and overflow_ set) when it outgrows the cap.
    std::string buffer_ GUARDED_BY(mu_);
    bool overflow_ GUARDED_BY(mu_) = false;
    std::vector<std::shared_ptr<Waiter>> waiters_ GUARDED_BY(mu_);
    // Set on clean EOF: the full result, served to joiners that arrive in
    // the completed-but-not-yet-removed window.
    std::shared_ptr<const std::string> final_body_ GUARDED_BY(mu_);
    Headers final_headers_ GUARDED_BY(mu_);

    // Trailer map shared with every follower's response; filled (under
    // the queue-close happens-before edge) at completion.
    // UNGUARDED: the pointer itself is set once at construction; the
    // pointee is written only pre-queue-close, read only post-EOF.
    std::shared_ptr<Headers> fanout_trailers_ = std::make_shared<Headers>();
    // UNGUARDED: written once by MakeTee before the tee stream exists.
    std::shared_ptr<const Headers> leader_trailers_;  // set by MakeTee
    // UNGUARDED: written once by MakeTee before the tee stream exists.
    CompleteFn on_complete_;                          // set by MakeTee
  };

 private:
  void Remove(const std::string& key, const Flight* flight) EXCLUDES(mu_);

  // UNGUARDED: registry pointer resolved in the constructor; Counter is
  // internally atomic.
  Counter* coalesced_;
  const size_t max_buffer_bytes_;
  const size_t queue_bytes_;
  mutable Mutex mu_{"singleflight", lockrank::kSingleflight};
  std::map<std::string, std::shared_ptr<Flight>> flights_ GUARDED_BY(mu_);
};

}  // namespace scoop

#endif  // SCOOP_CACHE_SINGLEFLIGHT_H_
