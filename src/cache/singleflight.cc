#include "cache/singleflight.h"

#include <chrono>
#include <utility>

namespace scoop {

namespace {
// A follower waits this long for the leader to publish the response head
// before giving up and executing the request itself. Generous: in-process
// leaders publish heads in microseconds; this only guards against a
// leader wedged by an injected fault.
constexpr auto kHeadWait = std::chrono::seconds(30);
}  // namespace

Singleflight::Singleflight(MetricRegistry* metrics, size_t max_buffer_bytes,
                           size_t queue_bytes)
    : coalesced_(metrics->GetCounter("cache.coalesced")),
      max_buffer_bytes_(max_buffer_bytes),
      queue_bytes_(queue_bytes) {}

Singleflight::Ticket Singleflight::Join(const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    MutexLock lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      Ticket ticket;
      ticket.role = Role::kLeader;
      ticket.flight = std::make_shared<Flight>(this, key, max_buffer_bytes_,
                                               queue_bytes_);
      flights_[key] = ticket.flight;
      return ticket;
    }
    flight = it->second;
  }
  // Table lock released: JoinAsFollower blocks on the flight's own state.
  Ticket ticket;
  if (flight->JoinAsFollower(&ticket)) {
    ticket.role = Role::kFollower;
    coalesced_->Increment();
  } else {
    ticket.role = Role::kBypass;
  }
  return ticket;
}

int64_t Singleflight::InFlight() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(flights_.size());
}

void Singleflight::Remove(const std::string& key, const Flight* flight) {
  MutexLock lock(mu_);
  auto it = flights_.find(key);
  if (it != flights_.end() && it->second.get() == flight) flights_.erase(it);
}

// --- Flight -----------------------------------------------------------------

Singleflight::Flight::Flight(Singleflight* owner, std::string key,
                             size_t max_buffer_bytes, size_t queue_bytes)
    : owner_(owner),
      key_(std::move(key)),
      max_buffer_bytes_(max_buffer_bytes),
      queue_bytes_(queue_bytes) {}

void Singleflight::Flight::PublishHead(int status, const Headers& headers) {
  {
    MutexLock lock(mu_);
    head_published_ = true;
    status_ = status;
    head_headers_ = headers;
  }
  head_cv_.NotifyAll();
}

bool Singleflight::Flight::JoinAsFollower(Ticket* out) {
  MutexLock lock(mu_);
  while (!head_published_ && !aborted_) {
    if (!head_cv_.WaitFor(mu_, kHeadWait)) return false;
  }
  if (aborted_) return false;
  out->status = status_;
  out->trailers = fanout_trailers_;
  if (completed_) {
    // Joined in the completed-but-not-yet-removed window: serve the final
    // result directly (equivalent to a cache hit).
    if (!final_body_) return false;  // overflowed: nothing buffered
    out->headers = final_headers_;
    out->stream =
        std::make_shared<SharedBufferByteStream>(final_body_, *final_body_);
    return true;
  }
  if (overflow_) return false;  // mid-stream prefix is gone
  out->headers = head_headers_;
  auto waiter = std::make_shared<Waiter>();
  waiter->queue = std::make_unique<BoundedByteQueue>(queue_bytes_);
  waiters_.push_back(waiter);
  // The Reader keeps the flight (and with it the queue) alive; the prefix
  // replays what the leader already streamed before this follower joined.
  auto reader = std::make_shared<BoundedByteQueue::Reader>(
      waiter->queue.get(), shared_from_this());
  if (buffer_.empty()) {
    out->stream = std::move(reader);
  } else {
    out->stream =
        std::make_shared<PrefixedByteStream>(buffer_, std::move(reader));
  }
  return true;
}

void Singleflight::Flight::Append(std::string_view chunk) {
  std::vector<std::shared_ptr<Waiter>> live;
  {
    MutexLock lock(mu_);
    if (!overflow_) {
      buffer_.append(chunk);
      if (buffer_.size() > max_buffer_bytes_) {
        // Too big to cache or replay; keep fanning out to the followers
        // already registered, but stop buffering.
        overflow_ = true;
        buffer_.clear();
        buffer_.shrink_to_fit();
      }
    }
    live.reserve(waiters_.size());
    for (const auto& w : waiters_) {
      if (w->alive) live.push_back(w);
    }
  }
  // Queue writes happen outside the flight lock: backpressure from a slow
  // follower must never hold up JoinAsFollower or Abort.
  for (const auto& w : live) {
    if (!w->queue->Write(chunk).ok()) {
      // Follower abandoned its stream; stop feeding it.
      MutexLock lock(mu_);
      w->alive = false;
    }
  }
}

void Singleflight::Flight::CompleteOk() {
  bool overflowed = false;
  std::shared_ptr<const std::string> body;
  Headers merged;
  std::vector<std::shared_ptr<Waiter>> waiters;
  {
    MutexLock lock(mu_);
    if (completed_ || aborted_) return;
    completed_ = true;
    overflowed = overflow_;
    merged = head_headers_;
    if (leader_trailers_) {
      for (const auto& [name, value] : *leader_trailers_) {
        merged.Set(name, value);
      }
    }
    final_headers_ = merged;
    if (!overflow_) {
      final_body_ = std::make_shared<const std::string>(std::move(buffer_));
      body = final_body_;
    }
    waiters = waiters_;
    // Publish the shared trailer map before the queues close: a follower
    // reads it only after EOF, and the queue close (below, after this
    // critical section) orders that read after this write; completed-serve
    // joiners are ordered by mu_ itself.
    if (leader_trailers_) *fanout_trailers_ = *leader_trailers_;
  }
  for (const auto& w : waiters) w->queue->CloseWrite(Status::OK());
  if (on_complete_) on_complete_(overflowed, std::move(body), std::move(merged));
  owner_->Remove(key_, this);
}

void Singleflight::Flight::Abort(Status error) {
  std::vector<std::shared_ptr<Waiter>> waiters;
  {
    MutexLock lock(mu_);
    if (completed_ || aborted_) return;
    aborted_ = true;
    buffer_.clear();
    waiters = waiters_;
  }
  head_cv_.NotifyAll();
  for (const auto& w : waiters) w->queue->Poison(error);
  owner_->Remove(key_, this);
}

class Singleflight::Flight::TeeStream : public ByteStream {
 public:
  TeeStream(std::shared_ptr<Flight> flight, std::shared_ptr<ByteStream> inner)
      : flight_(std::move(flight)), inner_(std::move(inner)) {}

  ~TeeStream() override {
    // Leader abandoned the response mid-stream: fail the followers over
    // to their own execution rather than leaving them blocked.
    if (!done_) {
      flight_->Abort(Status::Aborted("coalesced leader abandoned mid-stream"));
    }
  }

  Result<size_t> Read(char* buf, size_t n) override {
    Result<size_t> r = inner_->Read(buf, n);
    if (!r.ok()) {
      done_ = true;
      flight_->Abort(r.status());
      return r;
    }
    if (*r == 0) {
      done_ = true;
      flight_->CompleteOk();
      return r;
    }
    flight_->Append(std::string_view(buf, *r));
    return r;
  }

  std::optional<uint64_t> SizeHint() const override {
    return inner_->SizeHint();
  }

 private:
  std::shared_ptr<Flight> flight_;
  std::shared_ptr<ByteStream> inner_;
  bool done_ = false;
};

std::shared_ptr<ByteStream> Singleflight::Flight::MakeTee(
    std::shared_ptr<ByteStream> inner, std::shared_ptr<const Headers> trailers,
    CompleteFn on_complete) {
  // Leader-thread-only state: set before the first Read can run.
  leader_trailers_ = std::move(trailers);
  on_complete_ = std::move(on_complete);
  return std::make_shared<TeeStream>(shared_from_this(), std::move(inner));
}

}  // namespace scoop
