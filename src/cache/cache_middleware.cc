#include "cache/cache_middleware.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/trace.h"
#include "storlets/headers.h"

namespace scoop {

std::string CanonicalQueryFingerprint(const Headers& headers) {
  // v2 leads with the response *shape*: a pushdown body is either row
  // bytes or a SAG1 partial-aggregate frame, and the two must never
  // share a cache entry — a row-shape query handed a cached SAG1 body
  // (or vice versa) would decode garbage. The explicit token keeps the
  // shapes apart even if the remaining header serialization ever
  // collides across storlets.
  bool agg_shape =
      ToLower(Trim(headers.GetOr(std::string(kStorletParamPrefix) + "Output",
                                 ""))) == "partials";
  std::string fp = agg_shape ? "v2|shape=agg" : "v2|shape=rows";
  // Headers iterates in case-insensitive sorted order, so equal header
  // sets serialize identically regardless of arrival order or name case.
  for (const auto& [name, value] : headers) {
    std::string lower = ToLower(name);
    bool relevant = lower == "range" || StartsWith(lower, "x-run-storlet") ||
                    StartsWith(lower, "x-storlet-");
    if (!relevant) continue;
    fp.push_back('|');
    fp.append(lower);
    fp.push_back('=');
    fp.append(value);
  }
  return fp;
}

ResultCacheMiddleware::ResultCacheMiddleware(
    std::shared_ptr<ResultCache> cache, std::shared_ptr<Singleflight> flights,
    ContainerRegistry* registry, MetricRegistry* metrics)
    : cache_(std::move(cache)),
      flights_(std::move(flights)),
      registry_(registry),
      metrics_(metrics),
      fills_(metrics->GetCounter("cache.fills")),
      drops_(metrics->GetCounter("cache.drops")) {}

HttpResponse ResultCacheMiddleware::Process(Request& request,
                                            const HttpHandler& next) {
  Result<ObjectPath> parsed = ObjectPath::Parse(request.path);
  if (!parsed.ok() || !parsed->IsObject()) return next(request);
  switch (request.method) {
    case HttpMethod::kGet:
      return ProcessGet(request, next, *parsed);
    case HttpMethod::kPut:
    case HttpMethod::kPost:
    case HttpMethod::kDelete: {
      HttpResponse response = next(request);
      // Runs even when the cache is disabled, so entries cached before a
      // runtime disable cannot go stale for a later re-enable. The ETag
      // key already makes overwrites invalidate naturally; this returns
      // the bytes immediately.
      if (response.ok()) cache_->InvalidateObject(parsed->ToString());
      return response;
    }
    default:
      return next(request);
  }
}

HttpResponse ResultCacheMiddleware::ProcessGet(Request& request,
                                               const HttpHandler& next,
                                               const ObjectPath& path) {
  if (!cache_->enabled()) return next(request);
  // Only pushdown results are worth caching: a plain GET is already a
  // zero-CPU read at the store, and the proxy would double the cluster's
  // memory footprint caching raw objects.
  if (!request.headers.Has(kRunStorletHeader)) return next(request);
  const std::string object_path = path.ToString();
  // A faulted cache degrades to the uncached path, byte-identically.
  if (!FailpointCheck("cache.lookup", object_path).ok()) return next(request);
  Result<ObjectInfo> info =
      registry_->GetObjectInfo(path.account, path.container, path.object);
  if (!info.ok()) return next(request);

  const std::string key = ResultCache::MakeKey(
      object_path, info->etag, CanonicalQueryFingerprint(request.headers));
  const TraceContext parent = TraceContextFromHeaders(request.headers);

  std::optional<CachedResult> hit;
  Singleflight::Ticket ticket;
  {
    TraceSpan span("cache.lookup", parent);
    hit = cache_->Lookup(key);
    if (hit) {
      span.SetTag("outcome", "hit");
    } else {
      // A follower blocks here until the leader publishes the head; that
      // wait *is* the lookup finding an in-flight identical execution.
      ticket = flights_->Join(key);
      switch (ticket.role) {
        case Singleflight::Role::kLeader:
          span.SetTag("outcome", "miss");
          break;
        case Singleflight::Role::kFollower:
          span.SetTag("outcome", "coalesced");
          break;
        case Singleflight::Role::kBypass:
          span.SetTag("outcome", "bypass");
          break;
      }
    }
  }
  if (hit) return ServeHit(std::move(*hit), "hit");
  switch (ticket.role) {
    case Singleflight::Role::kLeader:
      return LeadAndFill(request, next, key, object_path, ticket.flight,
                         parent);
    case Singleflight::Role::kFollower:
      return ServeCoalesced(request, next, std::move(ticket));
    case Singleflight::Role::kBypass:
      break;
  }
  return next(request);
}

HttpResponse ResultCacheMiddleware::ServeHit(CachedResult result,
                                             const char* how) {
  HttpResponse response;
  response.status = result.status;
  response.headers = result.headers;
  response.headers.Set(kCacheStatusHeader, how);
  response.headers.Set("Content-Length", std::to_string(result.body->size()));
  response.SetBodyStream(
      std::make_shared<SharedBufferByteStream>(result.body, *result.body));
  return response;
}

HttpResponse ResultCacheMiddleware::LeadAndFill(
    Request& request, const HttpHandler& next, const std::string& key,
    const std::string& object_path,
    const std::shared_ptr<Singleflight::Flight>& flight,
    const TraceContext& parent) {
  HttpResponse response = next(request);
  if (!response.ok()) {
    // Followers bypass to their own execution; an error response is
    // never fanned out or cached.
    flight->Abort(Status::IOError("coalesced leader got status " +
                                  std::to_string(response.status)));
    return response;
  }
  // Only results a storlet actually produced are cached: a declined
  // pushdown (raw bytes) still fans out to followers — they asked for the
  // same request and would be declined identically — but is not worth
  // proxy memory.
  bool executed = response.headers.Has(kStorletExecutedHeader);
  Status fill_fault = FailpointCheck("cache.fill", object_path);
  bool cacheable = executed && fill_fault.ok();
  if (executed && !fill_fault.ok()) drops_->Increment();

  flight->PublishHead(response.status, response.headers);
  std::shared_ptr<const Headers> trailers = response.trailers();
  std::shared_ptr<ByteStream> inner = response.TakeBodyStream();
  auto on_complete = [cache = cache_, fills = fills_, drops = drops_,
                      cacheable, status = response.status, key, object_path,
                      parent](bool overflowed,
                              std::shared_ptr<const std::string> body,
                              Headers headers) {
    if (!cacheable) return;
    if (overflowed || !body) {
      drops->Increment();
      return;
    }
    TraceSpan span("cache.fill", parent);
    span.SetTag("bytes", std::to_string(body->size()));
    CachedResult entry;
    entry.status = status;
    entry.headers = std::move(headers);
    entry.body = std::move(body);
    if (cache->Insert(key, object_path, std::move(entry))) {
      fills->Increment();
    } else {
      span.SetTag("dropped", "true");
      drops->Increment();
    }
  };
  response.SetBodyStream(
      flight->MakeTee(std::move(inner), trailers, std::move(on_complete)),
      trailers);
  return response;
}

namespace {

// The follower's body: reads the leader's fan-out stream, and if the
// leader dies mid-stream (poisoned queue), re-executes the captured
// request itself and skips the bytes already delivered. Sound because the
// pushdown output is deterministic for a given (object, query); if the
// re-execution resolves differently (e.g. pushdown now declined, so raw
// bytes instead of filtered ones), the original error is surfaced instead
// and the client's own fallback ladder takes over.
class CoalescedBodyStream : public ByteStream {
 public:
  CoalescedBodyStream(std::shared_ptr<ByteStream> inner, Request request,
                      HttpHandler next, bool expect_executed)
      : inner_(std::move(inner)),
        request_(std::move(request)),
        next_(std::move(next)),
        expect_executed_(expect_executed) {}

  Result<size_t> Read(char* buf, size_t n) override {
    if (failed_) {
      if (fallback_) return fallback_->Read(buf, n);
      return error_;
    }
    Result<size_t> r = inner_->Read(buf, n);
    if (r.ok()) {
      delivered_ += *r;
      return r;
    }
    return FailOver(r.status(), buf, n);
  }

 private:
  Result<size_t> FailOver(const Status& original, char* buf, size_t n) {
    failed_ = true;
    error_ = original;
    HttpResponse fresh = next_(request_);
    if (!fresh.ok() ||
        fresh.headers.Has(kStorletExecutedHeader) != expect_executed_) {
      return error_;
    }
    std::shared_ptr<ByteStream> stream = fresh.TakeBodyStream();
    // Skip what the leader already delivered to us.
    uint64_t to_skip = delivered_;
    std::vector<char> scratch(kDefaultStreamChunk);
    while (to_skip > 0) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(to_skip, scratch.size()));
      Result<size_t> skipped = stream->Read(scratch.data(), want);
      if (!skipped.ok() || *skipped == 0) return error_;
      to_skip -= *skipped;
    }
    fallback_ = std::move(stream);
    return fallback_->Read(buf, n);
  }

  std::shared_ptr<ByteStream> inner_;
  Request request_;
  HttpHandler next_;
  const bool expect_executed_;
  uint64_t delivered_ = 0;
  bool failed_ = false;
  Status error_ = Status::OK();
  std::shared_ptr<ByteStream> fallback_;
};

}  // namespace

HttpResponse ResultCacheMiddleware::ServeCoalesced(
    Request& request, const HttpHandler& next, Singleflight::Ticket ticket) {
  HttpResponse response;
  response.status = ticket.status;
  response.headers = ticket.headers;
  response.headers.Set(kCacheStatusHeader, "coalesced");
  bool expect_executed = ticket.headers.Has(kStorletExecutedHeader);
  response.SetBodyStream(std::make_shared<CoalescedBodyStream>(
                             std::move(ticket.stream), request, next,
                             expect_executed),
                         std::move(ticket.trailers));
  return response;
}

}  // namespace scoop
