// The proxy-tier pushdown result cache. Analytic workloads are dominated
// by repeated scans over slowly-changing objects, yet every repeated
// pushdown query re-burns the storage-side CPU the paper shows is the
// scarce resource (PAPER.md fig10). ResultCache keeps the *filtered*
// response bytes — the storlet's output, usually a small fraction of the
// object — keyed by (object path, ETag, canonical query fingerprint), so
// a hot repeated query becomes a memory-speed read and any PUT/overwrite
// invalidates naturally because the ETag changes.
//
// Sharding: entries are placed by a hash of the *object path*, not the
// full key, so every cached result of one object lives in a single shard
// and InvalidateObject touches exactly one shard lock.
//
// Locking contract (DESIGN.md §3g): each shard has its own Mutex (rank
// lockrank::kCacheShard, leaf — nothing else is ever acquired under it);
// two shards are never held together. Hit bodies are handed out as
// shared_ptr<const std::string> and served zero-copy; eviction cannot
// invalidate an in-flight hit.
#ifndef SCOOP_CACHE_RESULT_CACHE_H_
#define SCOOP_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "objectstore/http.h"

namespace scoop {

// Shape of the proxy-tier result cache (scoop/controller config surface).
struct ResultCacheConfig {
  // Master switch. Off by default: the middleware is always installed but
  // passes straight through, so the cache can be enabled at runtime (and
  // the adaptive controller can turn it back off).
  bool enabled = false;
  // Total bytes of cached response bodies across all shards.
  size_t byte_budget = 64ull << 20;
  // Number of LRU shards (>= 1); each gets byte_budget / shards.
  int shards = 8;
  // Largest single result admitted; 0 derives byte_budget / 8 (still
  // clamped to the per-shard budget).
  size_t max_entry_bytes = 0;
};

// One cached pushdown response: the status/headers as the uncached path
// would return them (trailers already merged) plus the full body.
struct CachedResult {
  int status = 200;
  Headers headers;
  std::shared_ptr<const std::string> body;
};

// Sharded, byte-budgeted LRU over CachedResult. Thread-safe; metrics:
// cache.hits / cache.misses / cache.evictions / cache.invalidations
// counters, cache.bytes gauge, cache.lookup_us histogram (METRICS.md).
class ResultCache {
 public:
  ResultCache(const ResultCacheConfig& config, MetricRegistry* metrics);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Exact-match lookup; promotes the entry to most-recently-used. Counts
  // a hit or a miss and times itself into cache.lookup_us. Returns
  // nullopt when disabled.
  std::optional<CachedResult> Lookup(const std::string& key);

  // Admits a result under `key` for the object at `object_path`
  // ("/account/container/object" — decides the shard). Replaces an
  // existing entry for the same key and evicts LRU entries until the
  // shard fits its budget. Returns false (and caches nothing) when
  // disabled or the entry exceeds max_entry_bytes.
  bool Insert(const std::string& key, const std::string& object_path,
              CachedResult result);

  // Drops every entry cached for `object_path` (the PUT/DELETE hook);
  // returns how many entries were dropped. Runs even when disabled so a
  // disabled-then-reenabled cache cannot serve stale results.
  int64_t InvalidateObject(const std::string& object_path);

  // Drops everything (tests).
  void Clear();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  const ResultCacheConfig& config() const { return config_; }
  size_t max_entry_bytes() const { return max_entry_bytes_; }

  // Currently cached bytes (the cache.bytes gauge value).
  int64_t TotalBytes() const { return bytes_gauge_->value(); }

  // Builds the canonical cache key. Exposed for tests; the middleware is
  // the production caller.
  static std::string MakeKey(const std::string& object_path,
                             const std::string& etag,
                             const std::string& fingerprint);

 private:
  struct Entry {
    std::string object_path;
    CachedResult result;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    // All shard mutexes share one rank; no two are ever held together.
    Mutex mu{"cache_shard", lockrank::kCacheShard};
    // Front = most recently used. Holds the map keys.
    std::list<std::string> lru GUARDED_BY(mu);
    std::unordered_map<std::string, Entry> entries GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& object_path);
  // Drops one entry (found under the shard lock). Returns its byte size.
  static size_t EraseLocked(Shard& shard,
                            std::unordered_map<std::string, Entry>::iterator it)
      REQUIRES(shard.mu);
  static size_t EntryBytes(const std::string& key, const CachedResult& result);

  const ResultCacheConfig config_;
  const size_t per_shard_budget_;
  const size_t max_entry_bytes_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidations_;
  Gauge* bytes_gauge_;
  ExponentialHistogram* lookup_us_;
};

}  // namespace scoop

#endif  // SCOOP_CACHE_RESULT_CACHE_H_
