// Proxy-pipeline middleware gluing the result cache and singleflight
// coalescing into the request path. Installed on every proxy between the
// auth middleware and the proxy-stage storlet middleware:
//
//  * GET + X-Run-Storlet on an object: resolve the object's current ETag
//    from the container registry, derive the canonical query fingerprint
//    from the pushdown headers, and look up (path, ETag, fingerprint).
//    Hits are served zero-copy from memory (X-Scoop-Cache: hit). Misses
//    join the singleflight: the leader executes the normal pushdown path
//    and tees the streamed result into the cache; concurrent identical
//    requests fan out from the leader's stream (X-Scoop-Cache: coalesced)
//    and fall back to their own execution if the leader dies mid-stream.
//  * PUT/DELETE on an object: after a successful downstream response, all
//    cached results for that path are dropped. (The ETag in the key makes
//    overwrite invalidation airtight even without this hook; the explicit
//    drop just returns the bytes immediately.)
//
// Failure semantics: the "cache.lookup" failpoint degrades the request to
// the plain uncached path byte-identically; the "cache.fill" failpoint
// drops the fill (a poisoned fill is never served). Only responses that
// actually executed a storlet (X-Storlet-Executed) and completed cleanly
// are inserted. Spans: cache.lookup / cache.fill under proxy.request.
#ifndef SCOOP_CACHE_CACHE_MIDDLEWARE_H_
#define SCOOP_CACHE_CACHE_MIDDLEWARE_H_

#include <memory>
#include <string>

#include "cache/result_cache.h"
#include "cache/singleflight.h"
#include "common/metrics.h"
#include "objectstore/container_registry.h"
#include "objectstore/middleware.h"

namespace scoop {

// Response header marking how the cache layer served a GET: "hit"
// (served from cache) or "coalesced" (fanned out from a concurrent
// identical execution). Absent on the uncached path.
inline constexpr char kCacheStatusHeader[] = "X-Scoop-Cache";

// Canonical fingerprint of the pushdown query a GET carries: the sorted
// (lowercased-name, value) pairs of every header that shapes the result
// bytes — Range, X-Run-Storlet, X-Storlet-Run-On, X-Storlet-Range-Records
// and all storlet parameter headers. Requests that produce identical
// response bytes produce identical fingerprints.
std::string CanonicalQueryFingerprint(const Headers& headers);

class ResultCacheMiddleware : public Middleware {
 public:
  ResultCacheMiddleware(std::shared_ptr<ResultCache> cache,
                        std::shared_ptr<Singleflight> flights,
                        ContainerRegistry* registry, MetricRegistry* metrics);

  std::string name() const override { return "result_cache"; }

  HttpResponse Process(Request& request, const HttpHandler& next) override;

 private:
  HttpResponse ProcessGet(Request& request, const HttpHandler& next,
                          const ObjectPath& path);
  HttpResponse ServeHit(CachedResult result, const char* how);
  HttpResponse LeadAndFill(Request& request, const HttpHandler& next,
                           const std::string& key,
                           const std::string& object_path,
                           const std::shared_ptr<Singleflight::Flight>& flight,
                           const TraceContext& parent);
  HttpResponse ServeCoalesced(Request& request, const HttpHandler& next,
                              Singleflight::Ticket ticket);

  std::shared_ptr<ResultCache> cache_;
  std::shared_ptr<Singleflight> flights_;
  ContainerRegistry* registry_;
  MetricRegistry* metrics_;
  Counter* fills_;
  Counter* drops_;
};

}  // namespace scoop

#endif  // SCOOP_CACHE_CACHE_MIDDLEWARE_H_
