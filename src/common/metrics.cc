#include "common/metrics.h"

#include <algorithm>

namespace scoop {

// The accessors intentionally let a pointer into the guarded map escape:
// Counter/Gauge are internally atomic and map nodes are pointer-stable, so
// only the map lookup/insert itself needs `mu_` (see the class contract).
// Analysis is off here so the deliberate escape is not flagged.
Counter* MetricRegistry::GetCounter(const std::string& name)
    NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  return &counters_[name];
}

Gauge* MetricRegistry::GetGauge(const std::string& name)
    NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  return &gauges_[name];
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<MetricRegistry::GaugeSample> MetricRegistry::SnapshotGauges()
    const {
  MutexLock lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSample{name, gauge.value(), gauge.peak()});
  }
  return out;
}

void MetricRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
}

double TimeSeries::Max() const {
  double m = 0.0;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_[0].value;
  double area = 0.0;
  double span = samples_.back().time - samples_.front().time;
  for (size_t i = 1; i < samples_.size(); ++i) {
    double dt = samples_[i].time - samples_[i - 1].time;
    area += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  if (span <= 0.0) return samples_[0].value;
  return area / span;
}

double TimeSeries::Integral() const {
  double area = 0.0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    double dt = samples_[i].time - samples_[i - 1].time;
    area += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  return area;
}

double TimeSeries::Duration() const {
  return samples_.empty() ? 0.0 : samples_.back().time;
}

}  // namespace scoop
