#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace scoop {
namespace {

// Bucket for `value`: 0 for value <= 0, otherwise bit_width(value), so
// bucket i (i >= 1) spans [2^(i-1), 2^i). Negative durations cannot
// happen on the steady clock, so collapsing them into bucket 0 is fine.
int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(value));
}

// Lowest value bucket i can hold (see BucketIndex).
int64_t BucketLow(int i) {
  if (i <= 0) return 0;
  return int64_t{1} << (i - 1);
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

void ExponentialHistogram::Record(int64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  // min_ starts at the kNoMin sentinel, so the CAS-lower loop needs no
  // special first-record case.
  seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void ExponentialHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kNoMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double ExponentialHistogram::Percentile(double q,
                                        const int64_t (&buckets)[kBuckets],
                                        int64_t total) const {
  if (total <= 0) return 0.0;
  // Rank of the q-quantile in 1..total, then walk the cumulative counts.
  double rank = q * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Linear interpolation across the bucket's value range.
      double lo = static_cast<double>(BucketLow(i));
      double hi = static_cast<double>(BucketLow(i + 1));
      double frac = (rank - before) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

ExponentialHistogram::Snapshot ExponentialHistogram::Take() const {
  int64_t buckets[kBuckets];
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += buckets[i];
  }
  Snapshot snap;
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  int64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (total == 0 || min == kNoMin) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = Percentile(0.50, buckets, total);
  snap.p95 = Percentile(0.95, buckets, total);
  snap.p99 = Percentile(0.99, buckets, total);
  // Interpolation can overshoot the true extremes; clamp to observed.
  if (total > 0) {
    double lo = static_cast<double>(snap.min);
    double hi = static_cast<double>(snap.max);
    snap.p50 = std::clamp(snap.p50, lo, hi);
    snap.p95 = std::clamp(snap.p95, lo, hi);
    snap.p99 = std::clamp(snap.p99, lo, hi);
  }
  return snap;
}

// The accessors intentionally let a pointer into the guarded map escape:
// Counter/Gauge are internally atomic and map nodes are pointer-stable, so
// only the map lookup/insert itself needs `mu_` (see the class contract).
// Analysis is off here so the deliberate escape is not flagged.
Counter* MetricRegistry::GetCounter(const std::string& name)
    NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  return &counters_[name];
}

Gauge* MetricRegistry::GetGauge(const std::string& name)
    NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  return &gauges_[name];
}

ExponentialHistogram* MetricRegistry::GetHistogram(const std::string& name)
    NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  return &histograms_[name];
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<MetricRegistry::GaugeSample> MetricRegistry::SnapshotGauges()
    const {
  MutexLock lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSample{name, gauge.value(), gauge.peak()});
  }
  return out;
}

std::vector<MetricRegistry::HistogramSample> MetricRegistry::SnapshotHistograms()
    const {
  MutexLock lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(HistogramSample{name, histogram.Take()});
  }
  return out;
}

void MetricRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

std::string MetricRegistry::ToJson() const {
  auto counters = Snapshot();
  auto gauges = SnapshotGauges();
  auto histograms = SnapshotHistograms();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\":");
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(g.name);
    out.append("\":{\"value\":");
    out.append(std::to_string(g.value));
    out.append(",\"peak\":");
    out.append(std::to_string(g.peak));
    out.push_back('}');
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(h.name);
    out.append("\":{\"count\":");
    out.append(std::to_string(h.stats.count));
    out.append(",\"sum\":");
    out.append(std::to_string(h.stats.sum));
    out.append(",\"min\":");
    out.append(std::to_string(h.stats.min));
    out.append(",\"max\":");
    out.append(std::to_string(h.stats.max));
    out.append(",\"mean\":");
    AppendDouble(h.stats.mean(), &out);
    out.append(",\"p50\":");
    AppendDouble(h.stats.p50, &out);
    out.append(",\"p95\":");
    AppendDouble(h.stats.p95, &out);
    out.append(",\"p99\":");
    AppendDouble(h.stats.p99, &out);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

double TimeSeries::Max() const {
  double m = 0.0;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_[0].value;
  double area = 0.0;
  double span = samples_.back().time - samples_.front().time;
  for (size_t i = 1; i < samples_.size(); ++i) {
    double dt = samples_[i].time - samples_[i - 1].time;
    area += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  if (span <= 0.0) return samples_[0].value;
  return area / span;
}

double TimeSeries::Integral() const {
  double area = 0.0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    double dt = samples_[i].time - samples_[i - 1].time;
    area += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  return area;
}

double TimeSeries::Duration() const {
  return samples_.empty() ? 0.0 : samples_.back().time;
}

}  // namespace scoop
