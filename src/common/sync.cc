#include "common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#define SCOOP_HAVE_BACKTRACE 1
#endif

// Runtime lock-order registry (debug builds). Every Lock() first validates
// the acquisition against the locks the thread already holds:
//
//  * acquiring a mutex the thread holds          -> self-deadlock, abort;
//  * acquiring rank <= a held lock's rank        -> rank inversion, abort;
//  * acquiring m while holding h when the global
//    graph already contains a path m -> ... -> h -> cycle (a potential
//    deadlock even if this run never interleaves into it), abort.
//
// Each first-time edge h -> m records the call stack that established it,
// so a violation prints both sides of the inversion: the stack that locked
// in one order (recorded) and the stack locking in the other (current).
//
// This file is the one place in the repo allowed to use raw std::mutex
// (the registry cannot be built on the primitive it instruments).

namespace scoop {
namespace {

#if defined(SCOOP_LOCK_ORDER_CHECK) && SCOOP_LOCK_ORDER_CHECK
constexpr bool kLockOrderCheck = true;
#else
constexpr bool kLockOrderCheck = false;
#endif

constexpr int kMaxFrames = 32;

struct EdgeInfo {
#if defined(SCOOP_HAVE_BACKTRACE)
  void* frames[kMaxFrames];
#endif
  int frame_count = 0;
};

struct Node {
  const char* name = nullptr;
  int rank = kNoLockRank;
  // out[m] exists when this lock has been held while m was acquired.
  std::unordered_map<const Mutex*, EdgeInfo> out;
};

using Graph = std::unordered_map<const Mutex*, Node>;

std::mutex g_graph_mu;

// Leaked on purpose: mutexes with static storage duration may be destroyed
// (and deregister themselves) after any graph destructor would have run.
Graph& GetGraph() {
  static Graph* graph = new Graph();
  return *graph;
}

thread_local std::vector<const Mutex*> t_held;

const char* NameOf(const Mutex* mu) {
  return mu->name() != nullptr ? mu->name() : "<unnamed>";
}

void CaptureStack(EdgeInfo* edge) {
#if defined(SCOOP_HAVE_BACKTRACE)
  edge->frame_count = backtrace(edge->frames, kMaxFrames);
#else
  edge->frame_count = 0;
#endif
}

void PrintStack(const EdgeInfo& edge) {
#if defined(SCOOP_HAVE_BACKTRACE)
  if (edge.frame_count > 0) {
    backtrace_symbols_fd(edge.frames, edge.frame_count, STDERR_FILENO);
    return;
  }
#endif
  std::fprintf(stderr, "    <no stack captured>\n");
}

void PrintCurrentStack() {
#if defined(SCOOP_HAVE_BACKTRACE)
  void* frames[kMaxFrames];
  int count = backtrace(frames, kMaxFrames);
  backtrace_symbols_fd(frames, count, STDERR_FILENO);
#else
  std::fprintf(stderr, "    <no stack captured>\n");
#endif
}

void PrintHeldStack() {
  std::fprintf(stderr, "  locks held by this thread (oldest first):\n");
  for (const Mutex* held : t_held) {
    std::fprintf(stderr, "    \"%s\" (rank %d)\n", NameOf(held), held->rank());
  }
}

[[noreturn]] void DieSelfDeadlock(const Mutex* mu) {
  std::fprintf(stderr,
               "scoop: lock-order violation: self-deadlock — thread "
               "re-acquiring Mutex \"%s\" (rank %d) it already holds\n",
               NameOf(mu), mu->rank());
  PrintHeldStack();
  std::fprintf(stderr, "  acquisition stack:\n");
  PrintCurrentStack();
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void DieRankInversion(const Mutex* held, const Mutex* acquiring) {
  std::fprintf(stderr,
               "scoop: lock-order violation: rank inversion — acquiring "
               "Mutex \"%s\" (rank %d) while holding \"%s\" (rank %d); "
               "ranks must be acquired in strictly ascending order "
               "(DESIGN.md \"Locking model\")\n",
               NameOf(acquiring), acquiring->rank(), NameOf(held),
               held->rank());
  PrintHeldStack();
  std::fprintf(stderr, "  acquisition stack:\n");
  PrintCurrentStack();
  std::fflush(stderr);
  std::abort();
}

// Requires g_graph_mu. DFS for a path from `from` to `to` in the edge
// graph; fills `path` with [from, ..., to] when found.
bool FindPath(const Graph& graph, const Mutex* from, const Mutex* to,
              std::vector<const Mutex*>* path) {
  path->push_back(from);
  if (from == to) return true;
  auto it = graph.find(from);
  if (it != graph.end()) {
    for (const auto& [next, edge] : it->second.out) {
      // The path search is acyclic by construction (edges are only added
      // after this check passes), so no visited set is needed.
      if (FindPath(graph, next, to, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

// Requires g_graph_mu.
[[noreturn]] void DieCycle(const Graph& graph, const Mutex* held,
                           const Mutex* acquiring,
                           const std::vector<const Mutex*>& path) {
  std::fprintf(stderr,
               "scoop: lock-order violation: cycle (potential deadlock) — "
               "acquiring Mutex \"%s\" (rank %d) while holding \"%s\" "
               "(rank %d), but the opposite ordering already exists:\n",
               NameOf(acquiring), acquiring->rank(), NameOf(held),
               held->rank());
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    std::fprintf(stderr, "  \"%s\" was held while acquiring \"%s\", at:\n",
                 NameOf(path[i]), NameOf(path[i + 1]));
    auto node = graph.find(path[i]);
    if (node != graph.end()) {
      auto edge = node->second.out.find(path[i + 1]);
      if (edge != node->second.out.end()) PrintStack(edge->second);
    }
  }
  PrintHeldStack();
  std::fprintf(stderr, "  conflicting acquisition stack (current):\n");
  PrintCurrentStack();
  std::fflush(stderr);
  std::abort();
}

// Validates acquiring `mu` against this thread's held locks and records
// any new ordering edges. Runs before the actual lock so a real deadlock
// is reported instead of hung on.
void OnAcquiring(const Mutex* mu) {
  if (t_held.empty()) return;
  for (const Mutex* held : t_held) {
    if (held == mu) DieSelfDeadlock(mu);
  }
  std::lock_guard<std::mutex> graph_lock(g_graph_mu);
  Graph& graph = GetGraph();
  for (const Mutex* held : t_held) {
    Node& held_node = graph[held];
    held_node.name = held->name();
    held_node.rank = held->rank();
    if (held_node.out.count(mu) != 0) continue;  // edge already validated
    if (held->rank() != kNoLockRank && mu->rank() != kNoLockRank &&
        mu->rank() <= held->rank()) {
      DieRankInversion(held, mu);
    }
    std::vector<const Mutex*> path;
    if (FindPath(graph, mu, held, &path)) DieCycle(graph, held, mu, path);
    EdgeInfo edge;
    CaptureStack(&edge);
    held_node.out.emplace(mu, edge);
  }
}

void OnAcquired(const Mutex* mu) { t_held.push_back(mu); }

void OnReleased(const Mutex* mu) {
  // Locks are almost always released LIFO, but a CondVar wait may release
  // from mid-stack; erase the most recent occurrence.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "scoop: lock-order violation: unlocking Mutex \"%s\" this "
               "thread does not hold\n",
               NameOf(mu));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool LockOrderCheckingEnabled() { return kLockOrderCheck; }

Mutex::~Mutex() {
  if (!kLockOrderCheck) return;
  // Deregister so a future Mutex reusing this address inherits no edges.
  std::lock_guard<std::mutex> graph_lock(g_graph_mu);
  Graph& graph = GetGraph();
  graph.erase(this);
  for (auto& [mu, node] : graph) node.out.erase(this);
}

void Mutex::Lock() {
  if (kLockOrderCheck) OnAcquiring(this);
  mu_.lock();
  if (kLockOrderCheck) OnAcquired(this);
}

void Mutex::Unlock() {
  if (kLockOrderCheck) OnReleased(this);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  if (kLockOrderCheck) OnAcquired(this);
  return true;
}

}  // namespace scoop
