#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace scoop {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitCopy(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (std::string_view part : Split(input, sep)) out.emplace_back(part);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return v;
}

bool FastParseDouble(std::string_view s, double* out) {
  static constexpr double kPow10[] = {1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
                                      1e7, 1e8, 1e9, 1e10, 1e11, 1e12,
                                      1e13, 1e14, 1e15};
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && s[i] == '-') {
    neg = true;
    ++i;
  }
  uint64_t mantissa = 0;
  int digits = 0;
  int frac = 0;
  const size_t int_start = i;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    mantissa = mantissa * 10 + static_cast<uint64_t>(s[i] - '0');
    ++digits;
  }
  if (i == int_start) return false;  // ".5", "-", "inf", ...
  if (i < s.size() && s[i] == '.') {
    ++i;
    const size_t frac_start = i;
    for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
      mantissa = mantissa * 10 + static_cast<uint64_t>(s[i] - '0');
      ++digits;
      ++frac;
    }
    if (i == frac_start) return false;  // "1." — strtod differs, fall back
  }
  if (i != s.size() || digits > 15) return false;
  double v = static_cast<double>(mantissa);
  if (frac > 0) v /= kPow10[frac];
  *out = neg ? -v : v;
  return true;
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative greedy matcher with backtracking on the last '%', the classic
  // O(n*m) wildcard algorithm.
  size_t si = 0, pi = 0;
  size_t star_p = std::string_view::npos;
  size_t star_s = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

void AppendCsvField(std::string_view field, std::string* out) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, kUnits[unit]);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace scoop
