#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace scoop {

namespace failpoint_detail {
std::atomic<int> g_armed{0};
}  // namespace failpoint_detail

namespace {

// FNV-1a over the site name, mixed into the global seed so each site gets
// an independent deterministic stream.
uint64_t DeriveSeed(uint64_t global_seed, std::string_view name) {
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // splitmix64 finalizer keeps low-entropy combinations apart.
  uint64_t z = h ^ global_seed;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t ReadGlobalSeed() {
  const char* env = std::getenv("SCOOP_FAILPOINT_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<uint64_t>(v);
  }
  return Failpoints::kDefaultSeed;
}

// Sleeps outside any lock scope; lint forbids blocking under a MutexLock.
void ApplyLatency(int64_t latency_us) {
  if (latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
}

}  // namespace

Failpoints::Failpoints() : global_seed_(ReadGlobalSeed()) {}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

bool Failpoints::KnownSite(std::string_view name) {
  for (const char* site : kFailpointSites) {
    if (name == site) return true;
  }
  return false;
}

Status Failpoints::Arm(std::string_view name, FailpointSpec spec) {
  if (!KnownSite(name)) {
    return Status::InvalidArgument("unknown failpoint: " + std::string(name));
  }
  uint64_t seed =
      spec.seed != 0 ? spec.seed : DeriveSeed(global_seed_, name);
  MutexLock lock(mu_);
  auto [it, inserted] = armed_.insert_or_assign(
      std::string(name), Armed{std::move(spec), Rng(seed)});
  (void)it;
  if (inserted) {
    failpoint_detail::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Failpoints::Disarm(std::string_view name) {
  MutexLock lock(mu_);
  auto it = armed_.find(name);
  if (it != armed_.end()) {
    armed_.erase(it);
    failpoint_detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  MutexLock lock(mu_);
  failpoint_detail::g_armed.fetch_sub(static_cast<int>(armed_.size()),
                                      std::memory_order_relaxed);
  armed_.clear();
}

std::vector<std::string> Failpoints::ArmedSites() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(armed_.size());
  for (const auto& [name, state] : armed_) out.push_back(name);
  return out;
}

void Failpoints::SetFaultCounter(Counter* counter) {
  MutexLock lock(mu_);
  fault_counter_ = counter;
}

void Failpoints::ClearFaultCounter(Counter* counter) {
  MutexLock lock(mu_);
  if (fault_counter_ == counter) fault_counter_ = nullptr;
}

int64_t Failpoints::hits(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = armed_.find(name);
  return it == armed_.end() ? 0 : it->second.hits;
}

int64_t Failpoints::fires(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = armed_.find(name);
  return it == armed_.end() ? 0 : it->second.fires;
}

bool Failpoints::Fire(std::string_view name, std::string_view key,
                      FailpointSpec* out, uint64_t* corrupt_draw) {
  Counter* counter = nullptr;
  bool fired = false;
  {
    MutexLock lock(mu_);
    auto it = armed_.find(name);
    if (it == armed_.end()) return false;
    Armed& armed = it->second;
    if (!armed.spec.key.empty() && armed.spec.key != key) return false;
    armed.hits++;
    if (armed.hits <= armed.spec.skip) return false;
    if (armed.spec.max_fires >= 0 && armed.fires >= armed.spec.max_fires) {
      return false;
    }
    if (armed.spec.probability < 1.0 &&
        !armed.rng.NextBool(armed.spec.probability)) {
      return false;
    }
    armed.fires++;
    *out = armed.spec;
    *corrupt_draw = armed.rng.Next();
    counter = fault_counter_;
    fired = true;
  }
  // Counter increments are atomic; do them outside the registry lock so a
  // site firing under a device lock never orders kFailpoint before kMetrics.
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  if (counter != nullptr) counter->Increment();
  return fired;
}

Status Failpoints::Check(std::string_view name, std::string_view key) {
  FailpointSpec spec;
  uint64_t draw = 0;
  if (!Fire(name, key, &spec, &draw)) return Status::OK();
  switch (spec.action) {
    case FailpointSpec::Action::kLatency:
      ApplyLatency(spec.latency_us);
      return Status::OK();
    case FailpointSpec::Action::kError:
    case FailpointSpec::Action::kCorrupt:
    case FailpointSpec::Action::kDrop:
      ApplyLatency(spec.latency_us);
      return spec.error;
  }
  return Status::OK();
}

DataFaultKind Failpoints::CheckData(std::string_view name,
                                    std::string_view key, char* data,
                                    size_t len, size_t* keep_len,
                                    Status* error) {
  *keep_len = len;
  FailpointSpec spec;
  uint64_t draw = 0;
  if (!Fire(name, key, &spec, &draw)) return DataFaultKind::kNone;
  ApplyLatency(spec.latency_us);
  switch (spec.action) {
    case FailpointSpec::Action::kLatency:
      return DataFaultKind::kNone;
    case FailpointSpec::Action::kError:
      *error = spec.error;
      return DataFaultKind::kError;
    case FailpointSpec::Action::kCorrupt: {
      if (len == 0) {
        *error = spec.error;
        return DataFaultKind::kError;
      }
      // Flip a deterministic handful of bytes at seeded positions.
      uint64_t x = draw;
      size_t flips = 1 + static_cast<size_t>(x % 3);
      for (size_t i = 0; i < flips; i++) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        data[x % len] ^= static_cast<char>(0x5a + i);
      }
      return DataFaultKind::kCorrupted;
    }
    case FailpointSpec::Action::kDrop: {
      *keep_len = len / 2;
      *error = spec.error;
      return DataFaultKind::kDrop;
    }
  }
  return DataFaultKind::kNone;
}

}  // namespace scoop
