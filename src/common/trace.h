#ifndef SCOOP_COMMON_TRACE_H_
#define SCOOP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace scoop {

// Request tracing for the pushdown data path. A *span* is one timed
// operation (a proxy GET, one replica attempt, one storlet stage); spans
// link to a parent span and carry string tags, so a whole request renders
// as a tree: Stocator partition read → proxy → per-attempt backend hop →
// object server → storlet middleware → pipeline stages. The paper's
// evaluation is about *where* ingest time goes (Figs. 1, 5, 9, 10);
// traces make the same question answerable inside this reproduction.
//
// Propagation mirrors real distributed tracing: the ids travel as request
// headers (kTraceIdHeader / kParentSpanHeader, stamped via the glue in
// objectstore/http.h) and every hop re-stamps the parent-span header with
// its own span id before delegating down.
//
// Properties:
//  * Zero overhead when disabled: TraceSpan checks one relaxed atomic in
//    its constructor and becomes inert (no clock reads, no allocation).
//  * Deterministic ids: span/trace ids come from one process-wide atomic
//    counter, not from wall clock or randomness.
//  * Bounded: the collector keeps at most kMaxSpans spans and counts
//    drops instead of growing without bound.
//  * Thread-safe under the sync.h layer (buffer mutex has rank
//    lockrank::kTrace and is a leaf — Record() never nests a lock).

// Header names carrying the trace context across the HTTP-like hops.
inline constexpr char kTraceIdHeader[] = "X-Trace-Id";
inline constexpr char kParentSpanHeader[] = "X-Parent-Span-Id";

// One finished (or in-flight) timed operation.
struct Span {
  uint64_t trace_id = 0;   // all spans of one request share this
  uint64_t span_id = 0;    // unique within the process
  uint64_t parent_id = 0;  // 0 = root span of its trace
  std::string name;        // site name, e.g. "proxy.attempt"
  int64_t start_ns = 0;    // steady-clock, comparable within the process
  int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> tags;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

// The wire form of "who is my parent": a trace id plus the span id the
// next child should attach to. Invalid (trace_id == 0) means "no caller
// context" — a span started from it roots a fresh trace.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// Fixed-width lowercase-hex encoding used for the trace headers; Parse
// accepts any non-empty hex string and returns 0 on malformed input
// (which downstream treats as "no context").
std::string HexId(uint64_t id);
uint64_t ParseHexId(std::string_view s);

// Process-wide bounded span buffer. Tests and the ScoopController enable
// it around a workload, snapshot or dump the spans, then disable it; the
// production path never turns it on by itself.
class TraceCollector {
 public:
  static TraceCollector& Global();

  // Spans recorded beyond this many are counted in dropped() instead.
  static constexpr size_t kMaxSpans = 1 << 16;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Fresh id for a span or a trace root; never returns 0.
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(Span span) EXCLUDES(mu_);

  // Copy of every buffered span, in record order.
  std::vector<Span> Snapshot() const EXCLUDES(mu_);

  // Empties the buffer and zeroes the drop counter (ids keep advancing).
  void Clear() EXCLUDES(mu_);

  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // The whole buffer as a JSON document:
  //   {"spans":[{"trace_id":"<hex>","span_id":"<hex>","parent_id":"<hex>",
  //              "name":...,"start_ns":...,"end_ns":...,"duration_ns":...,
  //              "tags":{...}}, ...],
  //    "dropped": N}
  std::string DumpJson() const EXCLUDES(mu_);

 private:
  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> dropped_{0};
  mutable Mutex mu_{"trace_collector", lockrank::kTrace};
  std::vector<Span> spans_ GUARDED_BY(mu_);
};

// RAII span handle. Construction starts the clock; End() (or destruction)
// stops it and records the span into the global collector. When the
// collector is disabled at construction time the handle is inert: every
// method is a no-op and context() is invalid, so children started from it
// are inert too.
//
// A valid `parent` attaches the span to that trace; an invalid one roots
// a new trace (this is how Stocator — the client edge — mints trace ids).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const TraceContext& parent = {});
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches/overwrites a tag. Tags set after End() are lost.
  void SetTag(std::string key, std::string value);

  // Stops the clock and hands the span to the collector. Idempotent.
  void End();

  // Context for children of this span (invalid when inert).
  TraceContext context() const {
    return active_ ? TraceContext{span_.trace_id, span_.span_id}
                   : TraceContext{};
  }

  bool active() const { return active_; }

 private:
  bool active_ = false;
  bool ended_ = false;
  Span span_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_TRACE_H_
