#ifndef SCOOP_COMMON_BYTESTREAM_H_
#define SCOOP_COMMON_BYTESTREAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/result.h"
#include "common/sync.h"

namespace scoop {

// The chunked streaming abstraction of the data path. The whole point of
// Scoop is that only the useful bytes cross the wire (paper §IV); holding
// entire objects in memory at every hop of GET -> middleware -> storlet
// pipeline -> connector defeats that. A ByteStream is a pull-based source
// of bytes consumed front to back in bounded chunks, so a request's peak
// buffering is O(chunk_size x pipeline_depth) instead of
// O(object_size x pipeline_depth).
//
// Ownership/lifetime rules (see DESIGN.md "Streaming data path"):
//  * A stream is single-consumer and consumed once; it is handed off by
//    std::shared_ptr and whoever holds the pointer may read it.
//  * A stream owns (or shares ownership of) whatever backs it — a string,
//    a stored object, a producer — so it stays valid wherever the response
//    travels.
//  * Dropping a stream before EOF is legal and must release the producer
//    (a queue unblocks its writer with an Aborted error).

// Default chunk granularity of the data path; producers cap each Read at
// their configured chunk size so consumers observe chunked delivery even
// when they offer a larger buffer.
inline constexpr size_t kDefaultStreamChunk = 64 * 1024;

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Copies up to `n` bytes into `buf` and returns the count; 0 means EOF.
  // Errors (a failed upstream producer) surface as a non-OK status.
  virtual Result<size_t> Read(char* buf, size_t n) = 0;

  // Total bytes this stream will produce, when known up front (an
  // in-memory buffer or a device range). Unknown for producer-backed
  // streams such as a running storlet pipeline.
  virtual std::optional<uint64_t> SizeHint() const { return std::nullopt; }

  // Drains the remainder into a string (the compatibility edge for
  // buffered consumers).
  Result<std::string> ReadAll();

  // Drains the remainder through `consume`, `chunk_size` bytes at a time.
  Status DrainTo(const std::function<Status(std::string_view)>& consume,
                 size_t chunk_size = kDefaultStreamChunk);
};

// Push-based counterpart: where a producer writes its chunks.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  // Appends `data`; may block (a bounded queue applying backpressure).
  // Errors mean the consumer is gone and the producer should stop.
  virtual Status Write(std::string_view data) = 0;
};

// ---------------------------------------------------------------------------
// Backings

// Serves a string it owns. Each Read returns at most `chunk_size` bytes so
// downstream consumers see the same chunking a real producer would emit.
class StringByteStream : public ByteStream {
 public:
  explicit StringByteStream(std::string data,
                            size_t chunk_size = kDefaultStreamChunk)
      : data_(std::move(data)), chunk_size_(chunk_size ? chunk_size : 1) {}

  Result<size_t> Read(char* buf, size_t n) override;
  std::optional<uint64_t> SizeHint() const override {
    return data_.size() - pos_;
  }

 private:
  std::string data_;
  size_t chunk_size_;
  size_t pos_ = 0;
};

// Serves a [first, first+length) window of a buffer kept alive by `owner`
// (e.g. a StoredObject shared out of a device) — the zero-copy object-read
// backing.
class SharedBufferByteStream : public ByteStream {
 public:
  SharedBufferByteStream(std::shared_ptr<const void> owner,
                         std::string_view window,
                         size_t chunk_size = kDefaultStreamChunk)
      : owner_(std::move(owner)),
        window_(window),
        chunk_size_(chunk_size ? chunk_size : 1) {}

  Result<size_t> Read(char* buf, size_t n) override;
  std::optional<uint64_t> SizeHint() const override {
    return window_.size() - pos_;
  }

 private:
  std::shared_ptr<const void> owner_;
  std::string_view window_;
  size_t chunk_size_;
  size_t pos_ = 0;
};

// Pulls chunks from a producer callback. The producer returns the next
// chunk, an empty string at EOF, or an error.
class CallbackByteStream : public ByteStream {
 public:
  using Producer = std::function<Result<std::string>()>;
  explicit CallbackByteStream(Producer producer)
      : producer_(std::move(producer)) {}

  Result<size_t> Read(char* buf, size_t n) override;

 private:
  Producer producer_;
  std::string pending_;
  size_t pending_pos_ = 0;
  bool eof_ = false;
  Status error_ = Status::OK();
};

// Serves `prefix` first, then delegates to `rest`. Used to re-attach a
// chunk that was prefetched (e.g. to surface pipeline errors in the
// response status before any body byte is committed).
class PrefixedByteStream : public ByteStream {
 public:
  PrefixedByteStream(std::string prefix, std::shared_ptr<ByteStream> rest)
      : prefix_(std::move(prefix)), rest_(std::move(rest)) {}

  Result<size_t> Read(char* buf, size_t n) override;

 private:
  std::string prefix_;
  size_t pos_ = 0;
  std::shared_ptr<ByteStream> rest_;
};

// Passes reads through while adding the byte count to `counter` (traffic
// metrics for streamed bodies whose size is unknown up front).
class CountingByteStream : public ByteStream {
 public:
  CountingByteStream(std::shared_ptr<ByteStream> inner, Counter* counter)
      : inner_(std::move(inner)), counter_(counter) {}

  Result<size_t> Read(char* buf, size_t n) override;
  std::optional<uint64_t> SizeHint() const override {
    return inner_->SizeHint();
  }

 private:
  std::shared_ptr<ByteStream> inner_;
  Counter* counter_;
};

// Invokes `on_eof` exactly once when the inner stream reaches EOF (not on
// abandonment). Lets a producer publish completion data — e.g. storlet
// metadata trailers — once the last chunk has been delivered.
class EofCallbackByteStream : public ByteStream {
 public:
  EofCallbackByteStream(std::shared_ptr<ByteStream> inner,
                        std::function<void()> on_eof)
      : inner_(std::move(inner)), on_eof_(std::move(on_eof)) {}

  Result<size_t> Read(char* buf, size_t n) override;

 private:
  std::shared_ptr<ByteStream> inner_;
  std::function<void()> on_eof_;
  bool fired_ = false;
};

// ---------------------------------------------------------------------------
// BoundedByteQueue — the inter-stage pipe of the storlet pipeline.
//
// A single-producer single-consumer blocking queue of chunks with a hard
// byte bound: Write blocks while the queue is full (backpressure), Read
// blocks while it is empty. This is what makes §IV-B pipelining real —
// stage i+1 consumes stage i's chunks as they are produced, and no stage
// can run ahead by more than `max_bytes` of buffered data.
//
// The producer finishes with CloseWrite(status): OK propagates EOF, an
// error propagates to the consumer's Read. Destroying the Reader (consumer
// abandons mid-stream) unblocks the producer with an Aborted error.
//
// Locking contract: `mu_` (rank lockrank::kQueue) guards every queue field;
// both sides block on it via CondVars. It is a leaf lock — no other Mutex
// is ever acquired while it is held (metric updates are atomic).
class BoundedByteQueue {
 public:
  // `max_bytes` caps buffered bytes (at least one chunk is always
  // admitted so oversized writes cannot deadlock). `buffered_bytes`
  // (optional) tracks global buffered bytes and their peak;
  // `chunk_counter` (optional) counts chunks through this queue.
  explicit BoundedByteQueue(size_t max_bytes, Gauge* buffered_bytes = nullptr,
                            Counter* chunk_counter = nullptr);
  ~BoundedByteQueue();

  BoundedByteQueue(const BoundedByteQueue&) = delete;
  BoundedByteQueue& operator=(const BoundedByteQueue&) = delete;

  // Producer side.
  Status Write(std::string_view data) EXCLUDES(mu_);
  void CloseWrite(Status final_status) EXCLUDES(mu_);

  // Producer died mid-stream (storlet crash): discards everything still
  // buffered and fails the consumer's next Read with `error` — a poisoned
  // queue never delivers stale chunks or blocks a reader forever. No-op if
  // the producer already closed cleanly.
  void Poison(Status error) EXCLUDES(mu_);

  // Consumer side.
  Result<size_t> Read(char* buf, size_t n) EXCLUDES(mu_);
  void CloseRead() EXCLUDES(mu_);

  // A ByteStream view over the consumer side; closes the read side when
  // destroyed so an abandoned stream releases the producer. Keeps `owner`
  // alive (the queue typically lives inside a pipeline state object).
  class Reader : public ByteStream {
   public:
    Reader(BoundedByteQueue* queue, std::shared_ptr<void> owner)
        : queue_(queue), owner_(std::move(owner)) {}
    ~Reader() override { queue_->CloseRead(); }
    Result<size_t> Read(char* buf, size_t n) override {
      return queue_->Read(buf, n);
    }

   private:
    BoundedByteQueue* queue_;
    std::shared_ptr<void> owner_;
  };

  // A ByteSink view over the producer side.
  class Writer : public ByteSink {
   public:
    explicit Writer(BoundedByteQueue* queue) : queue_(queue) {}
    Status Write(std::string_view data) override {
      return queue_->Write(data);
    }

   private:
    BoundedByteQueue* queue_;
  };

 private:
  const size_t max_bytes_;
  // UNGUARDED: registry pointers resolved in the constructor; Gauge and
  // Counter are internally atomic.
  Gauge* buffered_bytes_;
  Counter* chunk_counter_;  // UNGUARDED: same as buffered_bytes_

  Mutex mu_{"bytequeue", lockrank::kQueue};
  CondVar can_write_;
  CondVar can_read_;
  std::deque<std::string> chunks_ GUARDED_BY(mu_);
  size_t queued_bytes_ GUARDED_BY(mu_) = 0;
  // Consumed prefix of chunks_.front().
  size_t front_pos_ GUARDED_BY(mu_) = 0;
  bool write_closed_ GUARDED_BY(mu_) = false;
  bool read_closed_ GUARDED_BY(mu_) = false;
  Status final_status_ GUARDED_BY(mu_) = Status::OK();
};

// Appends everything written to a string (the compatibility edge).
class StringByteSink : public ByteSink {
 public:
  explicit StringByteSink(std::string* out) : out_(out) {}
  Status Write(std::string_view data) override {
    out_->append(data);
    return Status::OK();
  }

 private:
  std::string* out_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_BYTESTREAM_H_
