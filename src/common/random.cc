#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace scoop {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into xoshiro state.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    s = Mix64(z);
  }
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + NextDouble() * (hi - lo);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return mean + (sum - 6.0) * stddev;
}

size_t Rng::NextIndex(size_t size) {
  return static_cast<size_t>(NextBounded(size));
}

ZipfSampler::ZipfSampler(size_t n, double exponent, uint64_t seed)
    : rng_(seed) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), exponent);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace scoop
