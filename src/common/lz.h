#ifndef SCOOP_COMMON_LZ_H_
#define SCOOP_COMMON_LZ_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace scoop {

// Byte-level LZ77 codec. Used by the Parquet-like columnar format (the
// Fig. 8 baseline) and by the CompressStorlet that implements the paper's
// §VI-C "combination of data filtering and compression" idea.
//
// Format: a token stream. Token byte T:
//   T < 0x80  — literal run of T+1 bytes, which follow verbatim.
//   T >= 0x80 — match: length (T & 0x7f) + kMinMatch, followed by a
//               2-byte little-endian backwards offset (1..65535).
// Greedy matching over a 64 KiB window with a 4-byte hash chain head.
std::string LzCompress(std::string_view input);

// Inverse of LzCompress; validates offsets/lengths and fails on corrupt
// input instead of reading out of bounds.
Result<std::string> LzDecompress(std::string_view compressed,
                                 size_t max_output_bytes = 1ULL << 32);

}  // namespace scoop

#endif  // SCOOP_COMMON_LZ_H_
