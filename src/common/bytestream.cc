#include "common/bytestream.h"

#include <algorithm>
#include <cstring>

namespace scoop {

Result<std::string> ByteStream::ReadAll() {
  std::string out;
  char buf[kDefaultStreamChunk];
  for (;;) {
    SCOOP_ASSIGN_OR_RETURN(size_t n, Read(buf, sizeof buf));
    if (n == 0) return out;
    out.append(buf, n);
  }
}

Status ByteStream::DrainTo(
    const std::function<Status(std::string_view)>& consume,
    size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  std::string buf(chunk_size, '\0');
  for (;;) {
    SCOOP_ASSIGN_OR_RETURN(size_t n, Read(buf.data(), buf.size()));
    if (n == 0) return Status::OK();
    SCOOP_RETURN_IF_ERROR(consume(std::string_view(buf.data(), n)));
  }
}

Result<size_t> StringByteStream::Read(char* buf, size_t n) {
  size_t available = data_.size() - pos_;
  size_t count = std::min({n, available, chunk_size_});
  std::memcpy(buf, data_.data() + pos_, count);
  pos_ += count;
  return count;
}

Result<size_t> SharedBufferByteStream::Read(char* buf, size_t n) {
  size_t available = window_.size() - pos_;
  size_t count = std::min({n, available, chunk_size_});
  std::memcpy(buf, window_.data() + pos_, count);
  pos_ += count;
  return count;
}

Result<size_t> CallbackByteStream::Read(char* buf, size_t n) {
  if (!error_.ok()) return error_;
  while (pending_pos_ >= pending_.size()) {
    if (eof_) return static_cast<size_t>(0);
    Result<std::string> next = producer_();
    if (!next.ok()) {
      error_ = next.status();
      return error_;
    }
    pending_ = std::move(next).value();
    pending_pos_ = 0;
    if (pending_.empty()) eof_ = true;
  }
  size_t count = std::min(n, pending_.size() - pending_pos_);
  std::memcpy(buf, pending_.data() + pending_pos_, count);
  pending_pos_ += count;
  return count;
}

Result<size_t> PrefixedByteStream::Read(char* buf, size_t n) {
  if (pos_ < prefix_.size()) {
    size_t count = std::min(n, prefix_.size() - pos_);
    std::memcpy(buf, prefix_.data() + pos_, count);
    pos_ += count;
    return count;
  }
  if (rest_ == nullptr) return static_cast<size_t>(0);
  return rest_->Read(buf, n);
}

Result<size_t> CountingByteStream::Read(char* buf, size_t n) {
  Result<size_t> r = inner_->Read(buf, n);
  if (r.ok() && counter_ != nullptr && *r > 0) {
    counter_->Add(static_cast<int64_t>(*r));
  }
  return r;
}

Result<size_t> EofCallbackByteStream::Read(char* buf, size_t n) {
  Result<size_t> r = inner_->Read(buf, n);
  if (r.ok() && *r == 0 && !fired_) {
    fired_ = true;
    if (on_eof_) on_eof_();
  }
  return r;
}

BoundedByteQueue::BoundedByteQueue(size_t max_bytes, Gauge* buffered_bytes,
                                   Counter* chunk_counter)
    : max_bytes_(max_bytes == 0 ? 1 : max_bytes),
      buffered_bytes_(buffered_bytes),
      chunk_counter_(chunk_counter) {}

BoundedByteQueue::~BoundedByteQueue() {
  MutexLock lock(mu_);
  if (buffered_bytes_ != nullptr && queued_bytes_ > 0) {
    buffered_bytes_->Add(-static_cast<int64_t>(queued_bytes_));
  }
}

Status BoundedByteQueue::Write(std::string_view data) {
  if (data.empty()) return Status::OK();
  MutexLock lock(mu_);
  // Admit at least one chunk even when it exceeds max_bytes_, otherwise an
  // oversized write could never complete.
  while (!read_closed_ && queued_bytes_ != 0 &&
         queued_bytes_ + data.size() > max_bytes_) {
    can_write_.Wait(mu_);
  }
  if (read_closed_) {
    return Status::Aborted("stream consumer closed before EOF");
  }
  if (write_closed_) {
    // The write side was closed out from under this producer (Poison after
    // a sibling died): nothing written now may reach the reader.
    return final_status_.ok()
               ? Status::Aborted("stream already closed for writing")
               : final_status_;
  }
  chunks_.emplace_back(data);
  queued_bytes_ += data.size();
  if (buffered_bytes_ != nullptr) {
    buffered_bytes_->Add(static_cast<int64_t>(data.size()));
  }
  if (chunk_counter_ != nullptr) chunk_counter_->Increment();
  can_read_.NotifyOne();
  return Status::OK();
}

void BoundedByteQueue::CloseWrite(Status final_status) {
  MutexLock lock(mu_);
  if (write_closed_) return;
  write_closed_ = true;
  final_status_ = std::move(final_status);
  can_read_.NotifyAll();
}

void BoundedByteQueue::Poison(Status error) {
  MutexLock lock(mu_);
  if (write_closed_) return;
  write_closed_ = true;
  final_status_ = error.ok() ? Status::Aborted("stream producer died") :
                               std::move(error);
  // Buffered chunks are from a producer that did not finish; dropping them
  // (rather than delivering a silently truncated body) is the contract.
  if (buffered_bytes_ != nullptr && queued_bytes_ > 0) {
    buffered_bytes_->Add(-static_cast<int64_t>(queued_bytes_));
  }
  chunks_.clear();
  queued_bytes_ = 0;
  front_pos_ = 0;
  can_read_.NotifyAll();
  can_write_.NotifyAll();
}

Result<size_t> BoundedByteQueue::Read(char* buf, size_t n) {
  MutexLock lock(mu_);
  while (chunks_.empty() && !write_closed_) can_read_.Wait(mu_);
  if (chunks_.empty()) {
    if (!final_status_.ok()) return final_status_;
    return static_cast<size_t>(0);
  }
  const std::string& front = chunks_.front();
  size_t count = std::min(n, front.size() - front_pos_);
  std::memcpy(buf, front.data() + front_pos_, count);
  front_pos_ += count;
  queued_bytes_ -= count;
  if (buffered_bytes_ != nullptr) {
    buffered_bytes_->Add(-static_cast<int64_t>(count));
  }
  if (front_pos_ >= front.size()) {
    chunks_.pop_front();
    front_pos_ = 0;
  }
  can_write_.NotifyOne();
  return count;
}

void BoundedByteQueue::CloseRead() {
  MutexLock lock(mu_);
  read_closed_ = true;
  can_write_.NotifyAll();
}

}  // namespace scoop
