#include "common/status.h"

namespace scoop {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kUnauthorized:
      return "unauthorized";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace scoop
