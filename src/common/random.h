#ifndef SCOOP_COMMON_RANDOM_H_
#define SCOOP_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scoop {

// Deterministic, seedable PRNG (xoshiro256**). All synthetic data in the
// repository flows through this generator so experiments are reproducible
// bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  // Approximately normal via sum of uniforms (Irwin-Hall, 12 draws).
  double NextGaussian(double mean, double stddev);

  // Picks a uniformly random element index for a container of `size`.
  size_t NextIndex(size_t size);

 private:
  uint64_t s_[4];
};

// Zipf-distributed sampler over ranks [0, n). Used for skewed workload
// generation (popular meters / cities appear disproportionately often).
class ZipfSampler {
 public:
  // `exponent` > 0; exponent 0.99 is the YCSB default.
  ZipfSampler(size_t n, double exponent, uint64_t seed);

  size_t Next();

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_RANDOM_H_
