#ifndef SCOOP_COMMON_METRICS_H_
#define SCOOP_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"

namespace scoop {

// Monotonic counter, safe for concurrent increments.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A level that moves both ways (e.g. currently buffered bytes), tracking
// its high-water mark. Safe for concurrent updates.
//
// Snapshot-vs-reset contract: value() and peak() are two independent
// atomic reads, so a snapshot taken concurrently with updates is only
// *per-field* consistent. The invariant the class does guarantee is that
// once all concurrent Add()/Reset() calls have completed, peak() >=
// value() and peak() >= every level the gauge actually reached since the
// reset. A Reset() racing an Add() may leave peak reflecting the pre-reset
// level of that add (peak over-counts, never under-counts); callers who
// need an exact epoch must quiesce writers before resetting — which is
// what every test and bench harness here does.
class Gauge {
 public:
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RaisePeakTo(now);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    // An Add() between the two stores above can have published a raised
    // peak_ before our peak_ store, then bumped value_ after our value_
    // store — leaving peak_ < value_. Re-read the live level and repair
    // the invariant; the CAS loop only ever raises peak_, so it cannot
    // clobber a concurrent Add()'s own peak update.
    RaisePeakTo(value_.load(std::memory_order_relaxed));
  }

 private:
  void RaisePeakTo(int64_t level) {
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (level > seen &&
           !peak_.compare_exchange_weak(seen, level,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

// Lock-free latency/size histogram with power-of-two buckets: bucket i
// holds values in [2^(i-1), 2^i), bucket 0 holds everything <= 0 or == 1
// via the bit-width rule below. 64 buckets cover the whole int64 range,
// so there is no configuration and no clipping. Percentiles come from a
// cumulative walk with linear interpolation inside the winning bucket —
// exact to within the bucket's ~2x resolution, which is plenty for the
// p50/p95/p99 summaries the benchmarks report (DESIGN.md §3f).
class ExponentialHistogram {
 public:
  static constexpr int kBuckets = 64;

  // Point-in-time summary. With concurrent writers the fields are only
  // per-field consistent (same caveat as Gauge); quiesce for exact stats.
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  // 0 when empty
    int64_t max = 0;  // 0 when empty
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  void Record(int64_t value);
  Snapshot Take() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  // min_ rests at this sentinel until the first Record() CAS-lowers it.
  static constexpr int64_t kNoMin = INT64_MAX;

  double Percentile(double q, const int64_t (&buckets)[kBuckets],
                    int64_t total) const;

  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{kNoMin};
  std::atomic<int64_t> max_{0};
};

// Named counters shared by a subsystem (e.g., one registry per cluster).
// Counter pointers remain valid for the registry's lifetime.
//
// Locking contract: `mu_` (rank lockrank::kMetrics) guards the map
// *structure* only. The Counter/Gauge values themselves are atomics, so
// handed-out pointers may be updated (e.g. from pipeline stage threads)
// concurrently with a snapshot without any lock — std::map nodes are
// pointer-stable. `mu_` is a leaf lock.
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  ExponentialHistogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  // Snapshot of all counter values, sorted by name.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const
      EXCLUDES(mu_);

  // Snapshot of all gauges as (name, current, peak), sorted by name.
  struct GaugeSample {
    std::string name;
    int64_t value;
    int64_t peak;
  };
  std::vector<GaugeSample> SnapshotGauges() const EXCLUDES(mu_);

  // Snapshot of all histograms, sorted by name.
  struct HistogramSample {
    std::string name;
    ExponentialHistogram::Snapshot stats;
  };
  std::vector<HistogramSample> SnapshotHistograms() const EXCLUDES(mu_);

  void ResetAll() EXCLUDES(mu_);

  // The registry as one JSON object:
  //   {"counters":{name:value,...},
  //    "gauges":{name:{"value":v,"peak":p},...},
  //    "histograms":{name:{"count":...,"sum":...,"min":...,"max":...,
  //                        "mean":...,"p50":...,"p95":...,"p99":...},...}}
  // This is the "metrics" payload of the BENCH_*.json files benchmarks
  // emit (see bench/bench_util.h and EXPERIMENTS.md).
  std::string ToJson() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"metric_registry", lockrank::kMetrics};
  std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mu_);
  std::map<std::string, ExponentialHistogram> histograms_ GUARDED_BY(mu_);
};

// A sampled (time, value) series, e.g. "compute-cluster CPU%" over a
// simulated query execution. Samples must be appended in time order.
class TimeSeries {
 public:
  struct Sample {
    double time;
    double value;
  };

  void Add(double time, double value) { samples_.push_back({time, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  double Max() const;
  // Time-weighted mean (trapezoid over sample intervals); plain mean of the
  // sample values when fewer than two samples exist.
  double Mean() const;
  // Integral of value over time (e.g., bytes if value is bytes/sec).
  double Integral() const;
  // Last sampled timestamp; 0 when empty.
  double Duration() const;

 private:
  std::vector<Sample> samples_;
};

// Wall-clock stopwatch used by the cost-model calibration.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_METRICS_H_
