#ifndef SCOOP_COMMON_METRICS_H_
#define SCOOP_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"

namespace scoop {

// Monotonic counter, safe for concurrent increments.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A level that moves both ways (e.g. currently buffered bytes), tracking
// its high-water mark. Safe for concurrent updates.
class Gauge {
 public:
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now,
                                        std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

// Named counters shared by a subsystem (e.g., one registry per cluster).
// Counter pointers remain valid for the registry's lifetime.
//
// Locking contract: `mu_` (rank lockrank::kMetrics) guards the map
// *structure* only. The Counter/Gauge values themselves are atomics, so
// handed-out pointers may be updated (e.g. from pipeline stage threads)
// concurrently with a snapshot without any lock — std::map nodes are
// pointer-stable. `mu_` is a leaf lock.
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);

  // Snapshot of all counter values, sorted by name.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const
      EXCLUDES(mu_);

  // Snapshot of all gauges as (name, current, peak), sorted by name.
  struct GaugeSample {
    std::string name;
    int64_t value;
    int64_t peak;
  };
  std::vector<GaugeSample> SnapshotGauges() const EXCLUDES(mu_);

  void ResetAll() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"metric_registry", lockrank::kMetrics};
  std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mu_);
};

// A sampled (time, value) series, e.g. "compute-cluster CPU%" over a
// simulated query execution. Samples must be appended in time order.
class TimeSeries {
 public:
  struct Sample {
    double time;
    double value;
  };

  void Add(double time, double value) { samples_.push_back({time, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  double Max() const;
  // Time-weighted mean (trapezoid over sample intervals); plain mean of the
  // sample values when fewer than two samples exist.
  double Mean() const;
  // Integral of value over time (e.g., bytes if value is bytes/sec).
  double Integral() const;
  // Last sampled timestamp; 0 when empty.
  double Duration() const;

 private:
  std::vector<Sample> samples_;
};

// Wall-clock stopwatch used by the cost-model calibration.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_METRICS_H_
