#ifndef SCOOP_COMMON_HASH_H_
#define SCOOP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace scoop {

// 64-bit FNV-1a over an arbitrary byte string. Used for ring placement and
// container hashing; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view data);

// Strong 64-bit finalizer (MurmurHash3 fmix64). Good avalanche; used to
// decorrelate sequential ids before ring placement.
uint64_t Mix64(uint64_t x);

// Combines two hashes (boost-style).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace scoop

#endif  // SCOOP_COMMON_HASH_H_
