#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/sync.h"

namespace scoop {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
// Serializes emission only; rank kLogging so a message may be logged while
// holding any other lock, and nothing may be acquired while emitting.
Mutex g_log_mutex("log", lockrank::kLogging);

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < GetLogLevel()) return;
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace scoop
