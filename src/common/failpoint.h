#ifndef SCOOP_COMMON_FAILPOINT_H_
#define SCOOP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sync.h"

namespace scoop {

// Fault injection for the request path. A *failpoint* is a named site in
// production code (`SCOOP_FAILPOINT("device.read")`) that normally does
// nothing; a test arms it with a FailpointSpec and the site then fires
// deterministically — returning an injected Status, sleeping, corrupting
// the bytes in flight, or dropping a stream mid-chunk. This is how the
// chaos suite manufactures the device failures, slow disks, corrupt
// chunks and storlet crashes the self-healing request path must survive
// (ROADMAP: "handles as many scenarios as you can imagine"; paper §III-IV
// rely on Swift masking exactly these faults).
//
// Properties:
//  * Zero overhead disarmed: sites check one relaxed atomic and branch.
//  * Deterministic: probabilistic triggers draw from a per-failpoint
//    xoshiro RNG seeded from SCOOP_FAILPOINT_SEED (env) or the spec, so
//    the same seed yields the same fault schedule.
//  * Scoped: a spec may carry a `key` (e.g. a device id); the site passes
//    its own key and only matching evaluations fire. An empty spec key
//    matches every site evaluation.
//  * Thread-safe under the sync.h layer (rank lockrank::kFailpoint; the
//    registry mutex is leaf-most apart from logging and is never held
//    across a sleep or a user callback).

// --- Site catalog -----------------------------------------------------------
// Every SCOOP_FAILPOINT / FailpointCheck site in the tree must use one of
// these names: Arm() rejects unknown names and tools/lint.py cross-checks
// the sources against this list (check `failpoint-name`).
inline constexpr const char* kFailpointSites[] = {
    "device.read",         // Device::GetShared / Get entry (keyed: device id)
    "device.write",        // Device::Put entry (keyed: device id)
    "device.delete",       // Device::Delete entry (keyed: device id)
    "object.read.chunk",   // per-chunk GET data plane (keyed: device id)
    "proxy.backend",       // proxy -> object-server hop (keyed: device id)
    "replicator.push",     // replica-repair write (keyed: device id)
    "middleware.get",      // storlet middleware GET interception
    "engine.invoke",       // storlet pipeline launch
    "engine.stage_crash",  // stage thread dies without closing its queue
    "cache.lookup",        // result-cache lookup (fault => uncached path)
    "cache.fill",          // result-cache fill (fault => fill dropped)
    "qos.admit",           // proxy QoS admission (fault => pushdown degrades)
    "qos.queue",           // fair-queue slot acquisition (fault => slot denied)
};

// What an armed failpoint does when it fires.
struct FailpointSpec {
  enum class Action {
    kError,    // evaluation returns `error`
    kLatency,  // evaluation sleeps `latency_us`, then proceeds normally
    kCorrupt,  // data-plane sites: flip bytes of the in-flight chunk
    kDrop,     // data-plane sites: truncate the chunk, then fail the stream
  };
  Action action = Action::kError;

  // kError payload. Also the status a dropped stream reports after the
  // truncated chunk.
  Status error = Status::IOError("injected fault");
  // kLatency payload.
  int64_t latency_us = 0;

  // Trigger shaping, applied in order: skip the first `skip` matching
  // evaluations, then fire each subsequent one with `probability`, at most
  // `max_fires` times (-1: unlimited). skip=N-1, max_fires=1 is "fire on
  // exactly the Nth hit".
  int skip = 0;
  int max_fires = -1;
  double probability = 1.0;

  // Only evaluations presenting this key fire; empty matches all.
  std::string key;

  // Seed for the probability draws and corruption positions; 0 derives a
  // per-site seed from the process-wide seed (SCOOP_FAILPOINT_SEED).
  uint64_t seed = 0;
};

// Outcome of a data-plane evaluation (see CheckData).
enum class DataFaultKind {
  kNone,       // proceed (latency, if any, already applied)
  kError,      // fail the read with the returned status
  kCorrupted,  // chunk bytes were flipped in place; deliver them
  kDrop,       // deliver the truncated chunk, then fail the stream
};

namespace failpoint_detail {
// Count of currently armed failpoints; sites branch on this and skip the
// registry entirely at zero. Relaxed is fine: arming happens-before the
// operations a test injects faults into via the test's own synchronization.
extern std::atomic<int> g_armed;
}  // namespace failpoint_detail

inline bool FailpointsArmed() {
  return failpoint_detail::g_armed.load(std::memory_order_relaxed) > 0;
}

// Process-wide failpoint registry.
class Failpoints {
 public:
  static Failpoints& Global();

  // Arms `name` with `spec`; re-arming replaces the spec and resets the
  // hit/fire counters for the site. Unknown names are rejected.
  Status Arm(std::string_view name, FailpointSpec spec) EXCLUDES(mu_);
  void Disarm(std::string_view name) EXCLUDES(mu_);
  void DisarmAll() EXCLUDES(mu_);

  // Mirrors every fire into `counter` (a cluster's "faults.injected");
  // nullptr detaches. The counter must outlive its registration.
  void SetFaultCounter(Counter* counter) EXCLUDES(mu_);
  // Detaches only if `counter` is the one currently registered — lets an
  // owner unregister on destruction without clobbering a newer owner.
  void ClearFaultCounter(Counter* counter) EXCLUDES(mu_);

  // Names of the currently armed sites, sorted. Trace spans along the
  // retry path tag attempts with this so a faulted run's trace shows
  // *which* injected fault each retry was healing.
  std::vector<std::string> ArmedSites() const EXCLUDES(mu_);

  // Evaluations since the site was (re)armed / since it fired.
  int64_t hits(std::string_view name) const EXCLUDES(mu_);
  int64_t fires(std::string_view name) const EXCLUDES(mu_);
  // Total fires across all sites since process start.
  int64_t total_fires() const { return total_fires_.load(); }

  // The process-wide seed: SCOOP_FAILPOINT_SEED from the environment, else
  // kDefaultSeed. Read once at first use.
  static constexpr uint64_t kDefaultSeed = 42;
  uint64_t global_seed() const { return global_seed_; }

  // --- Site evaluation ------------------------------------------------------

  // Control-plane site: returns the injected error when the site fires
  // with kError (kCorrupt/kDrop act like kError here — a control-plane
  // site has no bytes to corrupt), applies kLatency sleeps inline.
  Status Check(std::string_view name, std::string_view key = {})
      EXCLUDES(mu_);

  // Data-plane site: evaluates against the chunk in [data, data+len).
  // kCorrupted flips a few bytes in place at seeded positions; kDrop
  // reports how much of the chunk to keep via *keep_len. Latency sleeps
  // are applied inline; *error carries the kError / kDrop status.
  DataFaultKind CheckData(std::string_view name, std::string_view key,
                          char* data, size_t len, size_t* keep_len,
                          Status* error) EXCLUDES(mu_);

  Failpoints(const Failpoints&) = delete;
  Failpoints& operator=(const Failpoints&) = delete;

 private:
  Failpoints();

  struct Armed {
    FailpointSpec spec;
    Rng rng{0};
    int64_t hits = 0;
    int64_t fires = 0;
  };

  // Decides whether `name` fires now; fills `*out` with the spec on fire.
  // Latency is returned (not slept) so the sleep happens lock-free.
  bool Fire(std::string_view name, std::string_view key, FailpointSpec* out,
            uint64_t* corrupt_draw) EXCLUDES(mu_);

  static bool KnownSite(std::string_view name);

  const uint64_t global_seed_;
  std::atomic<int64_t> total_fires_{0};
  mutable Mutex mu_{"failpoints", lockrank::kFailpoint};
  std::map<std::string, Armed, std::less<>> armed_ GUARDED_BY(mu_);
  Counter* fault_counter_ GUARDED_BY(mu_) = nullptr;
};

// Evaluates a control-plane failpoint; OK when disarmed or not firing.
inline Status FailpointCheck(std::string_view name,
                             std::string_view key = {}) {
  if (!FailpointsArmed()) return Status::OK();
  return Failpoints::Global().Check(name, key);
}

// Control-plane site in a function returning Status or Result<T>: returns
// the injected error to the caller when the site fires.
#define SCOOP_FAILPOINT(name)                                \
  do {                                                       \
    if (::scoop::FailpointsArmed()) {                        \
      SCOOP_RETURN_IF_ERROR(::scoop::FailpointCheck(name));  \
    }                                                        \
  } while (false)

// Keyed form: `key` is only evaluated when some failpoint is armed.
#define SCOOP_FAILPOINT_KEYED(name, key)                          \
  do {                                                            \
    if (::scoop::FailpointsArmed()) {                             \
      SCOOP_RETURN_IF_ERROR(::scoop::FailpointCheck(name, key));  \
    }                                                             \
  } while (false)

}  // namespace scoop

#endif  // SCOOP_COMMON_FAILPOINT_H_
