#ifndef SCOOP_COMMON_RESULT_H_
#define SCOOP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace scoop {

// Holds either a value of type T or a non-OK Status. The usual way fallible
// value-producing functions report errors in this codebase.
//
//   Result<int> ParsePort(std::string_view s);
//   ...
//   SCOOP_ASSIGN_OR_RETURN(int port, ParsePort(arg));
//
// [[nodiscard]] like Status: dropping a Result discards both the value and
// the error, so -Werror=unused-result makes it a compile error. Use
// `.status().IgnoreError()` (with a reason comment) for the rare fire-and-
// forget call.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  // Returns OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

#define SCOOP_CONCAT_IMPL_(a, b) a##b
#define SCOOP_CONCAT_(a, b) SCOOP_CONCAT_IMPL_(a, b)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// binds the value to `lhs` (which may include a type declaration).
#define SCOOP_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto SCOOP_CONCAT_(_scoop_result_, __LINE__) = (expr);             \
  if (!SCOOP_CONCAT_(_scoop_result_, __LINE__).ok())                 \
    return SCOOP_CONCAT_(_scoop_result_, __LINE__).status();         \
  lhs = std::move(SCOOP_CONCAT_(_scoop_result_, __LINE__)).value()

}  // namespace scoop

#endif  // SCOOP_COMMON_RESULT_H_
