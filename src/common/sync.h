#ifndef SCOOP_COMMON_SYNC_H_
#define SCOOP_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// The repo-wide synchronization layer. Every component takes its locking
// primitives from here — raw std::mutex / std::lock_guard / std::unique_lock
// outside this header (and sync.cc) are forbidden and rejected by
// tools/lint.py — so that two properties hold everywhere:
//
//  1. Compile-time thread-safety: the wrappers carry Clang thread-safety
//     attributes, and every class documents its locking contract with
//     GUARDED_BY / REQUIRES / EXCLUDES. Clang builds run with
//     `-Wthread-safety -Werror=thread-safety`, so "touched guarded state
//     without the lock" is a build failure, not a review-time hope. Under
//     other compilers the annotations expand to nothing.
//
//  2. Runtime lock-order checking (debug builds, SCOOP_LOCK_ORDER_CHECK):
//     each Mutex carries a name and an optional rank; acquisitions record a
//     global lock-order graph, and a cycle (potential deadlock) or a
//     rank inversion aborts the process with both acquisition stacks — even
//     if the deadlock never actually fires in that run. The rank table and
//     the allowed acquisition order live in DESIGN.md ("Locking model").

// --- Clang thread-safety annotation macros (Abseil-style) -------------------

#if defined(__clang__)
#define SCOOP_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define SCOOP_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SCOOP_TS_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SCOOP_TS_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) SCOOP_TS_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SCOOP_TS_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) SCOOP_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) SCOOP_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) SCOOP_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) SCOOP_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) SCOOP_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) SCOOP_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) SCOOP_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SCOOP_TS_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  SCOOP_TS_ATTRIBUTE(no_thread_safety_analysis)
#endif

namespace scoop {

// --- Lock ranks -------------------------------------------------------------

// A Mutex without an explicit rank; unranked locks skip the rank check but
// still participate in the acquisition-graph cycle check.
inline constexpr int kNoLockRank = -1;

// Lock ranks, in the required acquisition order: a thread holding a lock of
// rank r may only acquire locks of strictly greater rank (or unranked
// locks). Two distinct same-rank locks must never be held together. The
// full table of which mutex guards what is in DESIGN.md "Locking model".
namespace lockrank {
inline constexpr int kQosTenants = 8;          // QosController tenant buckets
inline constexpr int kQosQueue = 9;            // weighted-fair-queue scheduler
inline constexpr int kPipeline = 10;           // storlet pipeline run state
inline constexpr int kSingleflight = 12;       // Singleflight flight table
inline constexpr int kCacheFlight = 13;        // per-flight fan-out state
inline constexpr int kCacheShard = 15;         // ResultCache shard LRU
inline constexpr int kNetReactor = 16;         // reactor posted-task queue
inline constexpr int kNetConn = 17;            // one TCP connection's outbox
inline constexpr int kNetClientPool = 18;      // TcpClient idle-socket pool
inline constexpr int kQueue = 20;              // BoundedByteQueue
inline constexpr int kThreadPool = 30;         // ThreadPool bookkeeping
inline constexpr int kMetrics = 40;            // MetricRegistry maps
inline constexpr int kContainerRegistry = 41;  // account/container metadata
inline constexpr int kAuth = 42;               // AuthService tables
inline constexpr int kStorletRegistry = 43;    // storlet factories/deploys
inline constexpr int kPolicy = 44;             // PolicyStore overrides
inline constexpr int kRepairQueue = 45;        // read-repair path set
inline constexpr int kDevice = 50;             // per-device object map
inline constexpr int kTrace = 80;              // TraceCollector span buffer
inline constexpr int kFailpoint = 85;          // fault-injection registry
inline constexpr int kLogging = 90;            // log serialization, leaf-most
}  // namespace lockrank

// True when this binary was built with the runtime lock-order registry
// (SCOOP_LOCK_ORDER_CHECK); tests use it to skip the death tests otherwise.
bool LockOrderCheckingEnabled();

// --- Primitives -------------------------------------------------------------

// Annotated exclusive lock. Prefer the named/ranked constructor for any
// mutex that can be held while another is acquired; the name and rank feed
// the debug lock-order checker's diagnostics.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex(nullptr) {}
  explicit Mutex(const char* name, int rank = kNoLockRank)
      : name_(name), rank_(rank) {}
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  // Never blocks, so it records the acquisition but establishes no
  // lock-order edge (a trylock in the "wrong" order cannot deadlock).
  bool TryLock() TRY_ACQUIRE(true);

  // BasicLockable spelling so std::condition_variable_any (inside CondVar)
  // can release and reacquire the mutex around a wait. Not for direct use.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

// RAII scope lock over a Mutex (the only idiomatic way to hold one).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to a Mutex at each wait. Callers re-check their
// predicate in a while loop around Wait — the predicate then reads guarded
// state inside the annotated critical section, which keeps the Clang
// analysis precise (no lambda predicates escaping the lock scope).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and reacquires `mu` before returning.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  // As Wait, but returns false if `timeout` elapsed before a notification.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scoop

#endif  // SCOOP_COMMON_SYNC_H_
