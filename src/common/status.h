#ifndef SCOOP_COMMON_STATUS_H_
#define SCOOP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace scoop {

// Canonical error codes used across the library. Modeled on the
// Google/Arrow/RocksDB convention: fallible functions return a Status (or a
// Result<T>, see result.h) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnauthorized,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
  kAborted,
  kDeadlineExceeded,
};

// Returns the canonical lowercase name of a status code ("not_found", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a human-readable message.
//
// The class is [[nodiscard]]: a fallible call whose Status is dropped on
// the floor is a compile error under -Werror=unused-result (set globally in
// CMakeLists.txt). Call sites that genuinely do not care must say so with
// `.IgnoreError()` plus a comment explaining why the error is ignorable;
// tools/scoop_check flags bare `(void)` discards.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unauthorized(std::string msg) {
    return Status(StatusCode::kUnauthorized, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnauthorized() const { return code_ == StatusCode::kUnauthorized; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  // Explicitly discards this status. The only sanctioned way to ignore a
  // fallible call's result — always pair it with a comment giving the
  // reason (best-effort cleanup, error already reported elsewhere, ...).
  // tools/scoop_check rejects bare `(void)` casts of Status expressions.
  void IgnoreError() const {}

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK status to the caller.
#define SCOOP_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::scoop::Status _scoop_status = (expr);        \
    if (!_scoop_status.ok()) return _scoop_status; \
  } while (false)

}  // namespace scoop

#endif  // SCOOP_COMMON_STATUS_H_
