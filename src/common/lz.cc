#include "common/lz.h"

#include <cstring>
#include <vector>

namespace scoop {

namespace {
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0x7f + kMinMatch;  // 131
constexpr size_t kMaxLiteralRun = 0x80;         // 128
constexpr size_t kWindow = 65535;
constexpr size_t kHashBits = 15;

inline uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(std::string_view input, size_t lit_start, size_t lit_end,
                   std::string* out) {
  while (lit_start < lit_end) {
    size_t run = std::min(kMaxLiteralRun, lit_end - lit_start);
    out->push_back(static_cast<char>(run - 1));
    out->append(input.substr(lit_start, run));
    lit_start += run;
  }
}

}  // namespace

std::string LzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  std::vector<size_t> table(1 << kHashBits, SIZE_MAX);

  size_t pos = 0;
  size_t lit_start = 0;
  while (pos + kMinMatch <= input.size()) {
    uint32_t h = Hash4(input.data() + pos);
    size_t candidate = table[h];
    table[h] = pos;
    if (candidate != SIZE_MAX && pos - candidate <= kWindow &&
        std::memcmp(input.data() + candidate, input.data() + pos, kMinMatch) ==
            0) {
      // Extend the match.
      size_t len = kMinMatch;
      size_t max_len = std::min(kMaxMatch, input.size() - pos);
      while (len < max_len &&
             input[candidate + len] == input[pos + len]) {
        ++len;
      }
      FlushLiterals(input, lit_start, pos, &out);
      out.push_back(static_cast<char>(0x80 | (len - kMinMatch)));
      uint16_t offset = static_cast<uint16_t>(pos - candidate);
      out.push_back(static_cast<char>(offset & 0xff));
      out.push_back(static_cast<char>(offset >> 8));
      // Seed the hash table inside the match so later data can refer into
      // it (sparse seeding keeps compression fast).
      size_t end = pos + len;
      for (size_t i = pos + 1; i + kMinMatch <= end && i + kMinMatch <= input.size();
           i += 3) {
        table[Hash4(input.data() + i)] = i;
      }
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(input, lit_start, input.size(), &out);
  return out;
}

Result<std::string> LzDecompress(std::string_view compressed,
                                 size_t max_output_bytes) {
  std::string out;
  size_t pos = 0;
  while (pos < compressed.size()) {
    unsigned char token = static_cast<unsigned char>(compressed[pos++]);
    if (token < 0x80) {
      size_t run = static_cast<size_t>(token) + 1;
      if (pos + run > compressed.size()) {
        return Status::InvalidArgument("corrupt LZ stream: literal overrun");
      }
      if (out.size() + run > max_output_bytes) {
        return Status::ResourceExhausted("LZ output exceeds limit");
      }
      out.append(compressed.substr(pos, run));
      pos += run;
    } else {
      if (pos + 2 > compressed.size()) {
        return Status::InvalidArgument("corrupt LZ stream: truncated match");
      }
      size_t len = static_cast<size_t>(token & 0x7f) + kMinMatch;
      size_t offset = static_cast<unsigned char>(compressed[pos]) |
                      (static_cast<size_t>(
                           static_cast<unsigned char>(compressed[pos + 1]))
                       << 8);
      pos += 2;
      if (offset == 0 || offset > out.size()) {
        return Status::InvalidArgument("corrupt LZ stream: bad offset");
      }
      if (out.size() + len > max_output_bytes) {
        return Status::ResourceExhausted("LZ output exceeds limit");
      }
      // Byte-by-byte copy: overlapping matches are valid (RLE-style).
      size_t src = out.size() - offset;
      for (size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  return out;
}

}  // namespace scoop
