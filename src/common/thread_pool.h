#ifndef SCOOP_COMMON_THREAD_POOL_H_
#define SCOOP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scoop {

// Fixed-size worker pool with a FIFO queue. Used to run Spark-like tasks
// concurrently; keeps its own bookkeeping so callers can wait for drain.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution on some worker thread.
  void Submit(std::function<void()> fn);

  // Blocks until the queue is empty and no task is running.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Runs `fn(i)` for i in [0, n) on `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace scoop

#endif  // SCOOP_COMMON_THREAD_POOL_H_
