#ifndef SCOOP_COMMON_THREAD_POOL_H_
#define SCOOP_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace scoop {

// Fixed-size worker pool with a FIFO queue. Used to run Spark-like tasks
// concurrently; keeps its own bookkeeping so callers can wait for drain.
//
// Locking contract: `mu_` (rank lockrank::kThreadPool) guards the task
// queue and the active/shutdown bookkeeping. Tasks execute with `mu_`
// released, so submitted work may take any lock; `mu_` itself is a leaf.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution on some worker thread.
  void Submit(std::function<void()> fn) EXCLUDES(mu_);

  // Blocks until the queue is empty and no task is running.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{"thread_pool", lockrank::kThreadPool};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // UNGUARDED: written only by the constructor; immutable afterwards
  // (the destructor joins after shutdown_ flips under mu_).
  std::vector<std::thread> threads_;
};

// Runs `fn(i)` for i in [0, n) on `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace scoop

#endif  // SCOOP_COMMON_THREAD_POOL_H_
