#ifndef SCOOP_COMMON_STRINGS_H_
#define SCOOP_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scoop {

// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view input, char sep);

// Splits and copies each field into an owned string.
std::vector<std::string> SplitCopy(std::string_view input, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

// Case-sensitive prefix / suffix / containment tests.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// Strict integer / floating-point parsers: the whole input must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

// Allocation-free exact fast path for the common `[-]digits[.digits]`
// shape with at most 15 total digits. Returns false (leaving *out
// untouched) on any other shape — exponents, hex, inf/nan, surrounding
// whitespace, 16+ digits — which the caller must route to ParseDouble.
// When it returns true the result is bit-identical to ParseDouble's:
// mantissa and power of ten are both exactly representable, so the
// single IEEE division is correctly rounded, same as strtod. Hot scan
// and filter loops use this; see csv/batch_reader.cc.
bool FastParseDouble(std::string_view s, double* out);

// Matches `s` against a SQL LIKE `pattern` where '%' matches any run of
// characters and '_' matches exactly one character. Case-sensitive, like
// Spark SQL's default collation.
bool LikeMatch(std::string_view s, std::string_view pattern);

// Appends `field` to `out` as one CSV field, RFC-4180 quoting it (and
// doubling embedded quotes) when it contains a comma, quote, or newline.
// The single escaping routine shared by every CSV writer in the repo —
// row writers, the batch serializer, and result rendering — so the
// dialects cannot drift apart.
void AppendCsvField(std::string_view field, std::string* out);

// Renders a byte count with binary units ("1.5 GiB").
std::string FormatBytes(double bytes);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scoop

#endif  // SCOOP_COMMON_STRINGS_H_
