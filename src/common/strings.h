#ifndef SCOOP_COMMON_STRINGS_H_
#define SCOOP_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scoop {

// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view input, char sep);

// Splits and copies each field into an owned string.
std::vector<std::string> SplitCopy(std::string_view input, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

// Case-sensitive prefix / suffix / containment tests.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// Strict integer / floating-point parsers: the whole input must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

// Matches `s` against a SQL LIKE `pattern` where '%' matches any run of
// characters and '_' matches exactly one character. Case-sensitive, like
// Spark SQL's default collation.
bool LikeMatch(std::string_view s, std::string_view pattern);

// Renders a byte count with binary units ("1.5 GiB").
std::string FormatBytes(double bytes);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scoop

#endif  // SCOOP_COMMON_STRINGS_H_
