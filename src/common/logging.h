#ifndef SCOOP_COMMON_LOGGING_H_
#define SCOOP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scoop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Defaults to
// kWarning so tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr (thread-safe). Prefer the SCOOP_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define SCOOP_LOG(level)                                              \
  if (::scoop::LogLevel::level >= ::scoop::GetLogLevel())             \
  ::scoop::internal::LogStream(::scoop::LogLevel::level, __FILE__,    \
                               __LINE__)                              \
      .stream()

}  // namespace scoop

#endif  // SCOOP_COMMON_LOGGING_H_
