#include "common/hash.h"

namespace scoop {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace scoop
