#include "common/trace.h"

#include <chrono>
#include <cstdio>

namespace scoop {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string HexId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

uint64_t ParseHexId(std::string_view s) {
  if (s.empty() || s.size() > 16) return 0;
  uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(Span span) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<Span> TraceCollector::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

void TraceCollector::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::DumpJson() const {
  std::vector<Span> spans = Snapshot();
  std::string out = "{\"spans\":[";
  bool first_span = true;
  for (const Span& span : spans) {
    if (!first_span) out.push_back(',');
    first_span = false;
    out.append("{\"trace_id\":\"");
    out.append(HexId(span.trace_id));
    out.append("\",\"span_id\":\"");
    out.append(HexId(span.span_id));
    out.append("\",\"parent_id\":\"");
    out.append(HexId(span.parent_id));
    out.append("\",\"name\":\"");
    AppendJsonEscaped(span.name, &out);
    out.append("\",\"start_ns\":");
    out.append(std::to_string(span.start_ns));
    out.append(",\"end_ns\":");
    out.append(std::to_string(span.end_ns));
    out.append(",\"duration_ns\":");
    out.append(std::to_string(span.duration_ns()));
    out.append(",\"tags\":{");
    bool first_tag = true;
    for (const auto& [key, value] : span.tags) {
      if (!first_tag) out.push_back(',');
      first_tag = false;
      out.push_back('"');
      AppendJsonEscaped(key, &out);
      out.append("\":\"");
      AppendJsonEscaped(value, &out);
      out.push_back('"');
    }
    out.append("}}");
  }
  out.append("],\"dropped\":");
  out.append(std::to_string(dropped()));
  out.push_back('}');
  return out;
}

TraceSpan::TraceSpan(std::string name, const TraceContext& parent) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;
  active_ = true;
  span_.name = std::move(name);
  if (parent.valid()) {
    span_.trace_id = parent.trace_id;
    span_.parent_id = parent.span_id;
  } else {
    span_.trace_id = collector.NextId();
    span_.parent_id = 0;
  }
  span_.span_id = collector.NextId();
  span_.start_ns = NowNs();
}

void TraceSpan::SetTag(std::string key, std::string value) {
  if (!active_ || ended_) return;
  for (auto& [existing_key, existing_value] : span_.tags) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  span_.tags.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::End() {
  if (!active_ || ended_) return;
  ended_ = true;
  span_.end_ns = NowNs();
  TraceCollector::Global().Record(std::move(span_));
}

}  // namespace scoop
