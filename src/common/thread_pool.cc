#include "common/thread_pool.h"

#include <memory>

namespace scoop {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

namespace {

// Completion state for one ParallelFor call. Heap-allocated and shared
// with every task: the caller may return (and unwind its stack) the moment
// the count hits zero, which can be while the last task is still inside
// the critical section — a stack-local mutex/condvar would be destroyed
// under it (the pre-sync.h implementation had exactly that race).
struct ParallelForState {
  Mutex mu{"parallel_for.done"};
  CondVar done;
  size_t remaining GUARDED_BY(mu) = 0;
};

}  // namespace

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  auto state = std::make_shared<ParallelForState>();
  state->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    // `fn` is captured by reference: the caller cannot return before every
    // task has finished running it.
    pool.Submit([state, &fn, i] {
      fn(i);
      MutexLock lock(state->mu);
      if (--state->remaining == 0) state->done.NotifyAll();
    });
  }
  MutexLock lock(state->mu);
  while (state->remaining != 0) state->done.Wait(state->mu);
}

}  // namespace scoop
