#include "common/thread_pool.h"

#include <atomic>

namespace scoop {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  std::atomic<size_t> remaining{n};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&, i] {
      fn(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace scoop
