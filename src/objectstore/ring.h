// The Swift-style consistent-hashing ring: object names hash to
// partitions, partitions map to weighted devices spread across zones and
// nodes. Immutable once built (rebalancing builds a new ring), so
// lookups need no locking.
#ifndef SCOOP_OBJECTSTORE_RING_H_
#define SCOOP_OBJECTSTORE_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scoop {

// A storage device participating in a ring: one disk on one storage node.
struct RingDevice {
  int id = 0;          // dense device id, index into the device table
  int node = 0;        // storage node hosting the device
  int zone = 0;        // failure domain
  double weight = 1.0; // relative capacity
};

// Swift-style consistent-hashing ring. The hash space is divided into
// 2^part_power partitions; each partition is assigned `replica_count`
// devices, balanced by weight and spread across zones and nodes where
// possible. Object names map to partitions via a uniform hash, so load
// spreads evenly as nodes are added — the property the paper's §III-B
// attributes Swift's scalability to.
class Ring {
 public:
  // Builds and balances a ring. Requires at least one device and
  // replica_count >= 1. Assignment is deterministic for a given input.
  static Result<Ring> Build(std::vector<RingDevice> devices, int part_power,
                            int replica_count);

  int partition_count() const { return 1 << part_power_; }
  int replica_count() const { return replica_count_; }
  const std::vector<RingDevice>& devices() const { return devices_; }

  // Maps an object path (or any key) to its partition.
  uint32_t GetPartition(std::string_view key) const;

  // Devices holding the replicas of `partition`, primary first.
  const std::vector<int>& GetPartitionDevices(uint32_t partition) const;

  // Incremental rebalance (Swift's ring-builder "add device + rebalance"):
  // returns a new ring containing the old devices plus `added`, migrating
  // only as many replica assignments as needed to bring the new devices to
  // their weight-proportional share. Existing assignments are otherwise
  // preserved, so the data movement a rebalance triggers is minimal.
  Result<Ring> AddDevices(std::vector<RingDevice> added) const;

  // Devices holding the replicas of `key` (convenience).
  const std::vector<int>& GetNodes(std::string_view key) const;

  // Number of partitions whose primary replica lives on `device_id`;
  // used by balance tests.
  int PrimaryPartitionCount(int device_id) const;

  // Total replica assignments per device; used by balance tests.
  std::vector<int> ReplicaCountsPerDevice() const;

  // Constructs an empty ring; use Build() to obtain a usable one.
  Ring() = default;

 private:
  int part_power_ = 0;
  int replica_count_ = 0;
  std::vector<RingDevice> devices_;
  // assignment_[partition] = device ids, one per replica.
  std::vector<std::vector<int>> assignment_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_RING_H_
