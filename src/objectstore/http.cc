#include "objectstore/http.h"

#include <cctype>

#include "common/strings.h"

namespace scoop {

std::string_view HttpMethodName(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPut:
      return "PUT";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kDelete:
      return "DELETE";
    case HttpMethod::kHead:
      return "HEAD";
  }
  return "?";
}

bool Headers::CaseInsensitiveLess::operator()(const std::string& a,
                                              const std::string& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int ca = std::tolower(static_cast<unsigned char>(a[i]));
    int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

void Headers::Set(std::string_view name, std::string value) {
  map_[std::string(name)] = std::move(value);
}

std::optional<std::string> Headers::Get(std::string_view name) const {
  auto it = map_.find(std::string(name));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::string Headers::GetOr(std::string_view name, std::string fallback) const {
  auto v = Get(name);
  return v ? *v : std::move(fallback);
}

bool Headers::Has(std::string_view name) const {
  return map_.find(std::string(name)) != map_.end();
}

void Headers::Remove(std::string_view name) { map_.erase(std::string(name)); }

void HttpResponse::Materialize() {
  if (stream_ == nullptr) return;
  std::shared_ptr<ByteStream> stream = std::move(stream_);
  stream_.reset();
  Result<std::string> drained = stream->ReadAll();
  if (!drained.ok()) {
    // The producer failed after headers were formed; in-process the status
    // is not committed yet, so surface the failure the way the buffered
    // path did.
    status = 500;
    body_ = drained.status().ToString();
    headers.Remove("X-Storlet-Executed");
    trailers_.reset();
    headers.Set("Content-Length", std::to_string(body_.size()));
    return;
  }
  body_ = std::move(drained).value();
  if (trailers_ != nullptr) {
    for (const auto& [name, value] : *trailers_) headers.Set(name, value);
    trailers_.reset();
  }
  headers.Set("Content-Length", std::to_string(body_.size()));
}

std::shared_ptr<ByteStream> HttpResponse::TakeBodyStream() {
  if (stream_ != nullptr) {
    auto out = std::move(stream_);
    stream_.reset();
    return out;
  }
  auto out = std::make_shared<StringByteStream>(std::move(body_));
  body_.clear();
  return out;
}

std::optional<uint64_t> HttpResponse::BodySizeHint() const {
  if (stream_ == nullptr) return body_.size();
  if (auto hint = stream_->SizeHint()) return hint;
  auto length = headers.Get("Content-Length");
  if (length) {
    auto parsed = ParseInt64(*length);
    if (parsed.ok() && *parsed >= 0) return static_cast<uint64_t>(*parsed);
  }
  return std::nullopt;
}

std::string ObjectPath::ToString() const {
  std::string out = "/" + account;
  if (!container.empty()) out += "/" + container;
  if (!object.empty()) out += "/" + object;
  return out;
}

Result<ObjectPath> ObjectPath::Parse(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must start with '/': " +
                                   std::string(path));
  }
  path.remove_prefix(1);
  ObjectPath out;
  size_t slash = path.find('/');
  if (slash == std::string_view::npos) {
    out.account = std::string(path);
  } else {
    out.account = std::string(path.substr(0, slash));
    path.remove_prefix(slash + 1);
    slash = path.find('/');
    if (slash == std::string_view::npos) {
      out.container = std::string(path);
    } else {
      out.container = std::string(path.substr(0, slash));
      out.object = std::string(path.substr(slash + 1));
    }
  }
  if (out.account.empty()) {
    return Status::InvalidArgument("empty account in path");
  }
  if (!out.object.empty() && out.container.empty()) {
    return Status::InvalidArgument("object without container");
  }
  return out;
}

Result<ByteRange> ByteRange::Parse(std::string_view header_value,
                                   uint64_t object_size) {
  if (!StartsWith(header_value, "bytes=")) {
    return Status::InvalidArgument("unsupported range unit: " +
                                   std::string(header_value));
  }
  std::string_view spec = header_value.substr(6);
  if (spec.find(',') != std::string_view::npos) {
    return Status::Unimplemented("multi-range requests are not supported");
  }
  size_t dash = spec.find('-');
  if (dash == std::string_view::npos) {
    return Status::InvalidArgument("malformed range: " + std::string(spec));
  }
  std::string_view first_str = spec.substr(0, dash);
  std::string_view last_str = spec.substr(dash + 1);
  ByteRange range;
  if (first_str.empty()) {
    // Suffix range: last `n` bytes.
    SCOOP_ASSIGN_OR_RETURN(int64_t suffix, ParseInt64(last_str));
    if (suffix <= 0) return Status::InvalidArgument("empty suffix range");
    uint64_t n = std::min<uint64_t>(static_cast<uint64_t>(suffix), object_size);
    if (object_size == 0) return Status::OutOfRange("range on empty object");
    range.first = object_size - n;
    range.last = object_size - 1;
    return range;
  }
  SCOOP_ASSIGN_OR_RETURN(int64_t first, ParseInt64(first_str));
  if (first < 0) return Status::InvalidArgument("negative range start");
  if (static_cast<uint64_t>(first) >= object_size) {
    return Status::OutOfRange("range start beyond object size");
  }
  range.first = static_cast<uint64_t>(first);
  if (last_str.empty()) {
    range.last = object_size - 1;
  } else {
    SCOOP_ASSIGN_OR_RETURN(int64_t last, ParseInt64(last_str));
    if (last < first) return Status::InvalidArgument("range end before start");
    range.last = std::min<uint64_t>(static_cast<uint64_t>(last),
                                    object_size - 1);
  }
  return range;
}

Result<ContentRange> ContentRange::Parse(std::string_view header_value) {
  if (!StartsWith(header_value, "bytes ")) {
    return Status::InvalidArgument("bad Content-Range: " +
                                   std::string(header_value));
  }
  std::string_view rest = header_value.substr(6);
  size_t dash = rest.find('-');
  size_t slash = rest.find('/');
  if (dash == std::string_view::npos || slash == std::string_view::npos ||
      dash > slash) {
    return Status::InvalidArgument("bad Content-Range: " +
                                   std::string(header_value));
  }
  ContentRange out;
  SCOOP_ASSIGN_OR_RETURN(int64_t first, ParseInt64(rest.substr(0, dash)));
  SCOOP_ASSIGN_OR_RETURN(int64_t last,
                         ParseInt64(rest.substr(dash + 1, slash - dash - 1)));
  SCOOP_ASSIGN_OR_RETURN(int64_t total, ParseInt64(rest.substr(slash + 1)));
  out.first = static_cast<uint64_t>(first);
  out.last = static_cast<uint64_t>(last);
  out.total = static_cast<uint64_t>(total);
  return out;
}

std::optional<int64_t> RetryAfterMillis(const Headers& headers) {
  if (auto ms = headers.Get(kRetryAfterMsHeader)) {
    auto parsed = ParseInt64(*ms);
    if (parsed.ok() && *parsed >= 0) return *parsed;
  }
  if (auto secs = headers.Get(kRetryAfterHeader)) {
    auto parsed = ParseInt64(*secs);
    if (parsed.ok() && *parsed >= 0) return *parsed * 1000;
  }
  return std::nullopt;
}

TraceContext TraceContextFromHeaders(const Headers& headers) {
  // Disabled collector → every span is inert, so skip the map lookups and
  // keep the request path at one relaxed atomic load.
  if (!TraceCollector::Global().enabled()) return TraceContext{};
  TraceContext ctx;
  if (auto trace = headers.Get(kTraceIdHeader)) {
    ctx.trace_id = ParseHexId(*trace);
  }
  if (auto span = headers.Get(kParentSpanHeader)) {
    ctx.span_id = ParseHexId(*span);
  }
  if (ctx.trace_id == 0) return TraceContext{};
  return ctx;
}

void StampTraceContext(const TraceContext& ctx, Headers* headers) {
  if (!ctx.valid()) {
    headers->Remove(kTraceIdHeader);
    headers->Remove(kParentSpanHeader);
    return;
  }
  headers->Set(kTraceIdHeader, HexId(ctx.trace_id));
  headers->Set(kParentSpanHeader, HexId(ctx.span_id));
}

}  // namespace scoop
