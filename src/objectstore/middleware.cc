#include "objectstore/middleware.h"

namespace scoop {

void Pipeline::Use(std::shared_ptr<Middleware> middleware) {
  chain_.push_back(std::move(middleware));
}

std::vector<std::string> Pipeline::MiddlewareNames() const {
  std::vector<std::string> names;
  names.reserve(chain_.size());
  for (const auto& m : chain_) names.push_back(m->name());
  return names;
}

HttpResponse Pipeline::Handle(Request& request) const {
  // Build the nested handler on the fly: chain_[i] wraps chain_[i+1..] + app.
  HttpHandler next = app_;
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    std::shared_ptr<Middleware> m = *it;
    HttpHandler inner = std::move(next);
    next = [m, inner](Request& req) { return m->Process(req, inner); };
  }
  return next(request);
}

}  // namespace scoop
