// The HTTP-like vocabulary every hop of the store speaks: methods,
// status codes, the ordered-multimap Headers, Request, HttpResponse with
// its streaming body (bounded chunks, DESIGN.md §3c), and the glue that
// carries trace contexts in X-Trace-Id / X-Parent-Span-Id headers
// (DESIGN.md §3f). In-process, but shaped like the wire protocol so the
// middleware pipelines compose the way Swift's WSGI stack does.
#ifndef SCOOP_OBJECTSTORE_HTTP_H_
#define SCOOP_OBJECTSTORE_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytestream.h"
#include "common/result.h"
#include "common/trace.h"

namespace scoop {

// The object store speaks an HTTP-like request/response protocol, exactly
// rich enough for the Swift data path Scoop depends on: verbs, a
// /account/container/object path, headers (the carrier of pushdown-task
// metadata), byte ranges, and a body.

enum class HttpMethod { kGet, kPut, kPost, kDelete, kHead };

std::string_view HttpMethodName(HttpMethod method);

// Case-insensitive header map, per RFC 7230 field-name semantics.
class Headers {
 public:
  void Set(std::string_view name, std::string value);
  // Returns the header value or nullopt.
  std::optional<std::string> Get(std::string_view name) const;
  // Returns the header value or `fallback`.
  std::string GetOr(std::string_view name, std::string fallback) const;
  bool Has(std::string_view name) const;
  void Remove(std::string_view name);
  size_t size() const { return map_.size(); }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::string, CaseInsensitiveLess> map_;
};

// --- Trace propagation glue (DESIGN.md §3f) ---------------------------------
// The trace context rides the same header channel as the pushdown task:
// kTraceIdHeader / kParentSpanHeader. Each hop decodes its parent context
// from the inbound request, opens a child span, and re-stamps the headers
// with its own span id before delegating down.

// Decodes the context stamped on `headers`; invalid when absent/malformed
// or when the collector is disabled (spans would be inert anyway — the
// early-out keeps the disabled request path at one atomic load).
TraceContext TraceContextFromHeaders(const Headers& headers);

// Stamps `ctx` onto `headers`; an invalid ctx removes the trace headers
// instead (so a disabled collector leaves requests byte-identical).
void StampTraceContext(const TraceContext& ctx, Headers* headers);

// --- QoS / backpressure wire vocabulary (DESIGN.md §3k) ---------------------
// Shed responses advertise when to come back; clients treat the hint as
// the *floor* of their backoff instead of guessing with a blind
// exponential. Retry-After is the RFC 7231 integer-seconds form; the
// millisecond twin exists because bucket refill times are usually far
// below one second and rounding up to 1s would idle clients needlessly.

inline constexpr char kRetryAfterHeader[] = "Retry-After";
inline constexpr char kRetryAfterMsHeader[] = "X-Scoop-Retry-After-Ms";
// Response annotation from the QoS admission ladder: "degraded" (pushdown
// stripped, raw bytes served) or "shed" (on the 503).
inline constexpr char kQosDecisionHeader[] = "X-Scoop-Qos";
// Client-declared per-request latency budget in microseconds; the proxy
// degrades pushdown when predicted queueing would blow it.
inline constexpr char kQosDeadlineHeader[] = "X-Scoop-Deadline-Us";

// The advertised backoff floor in milliseconds: X-Scoop-Retry-After-Ms
// when present, else Retry-After seconds * 1000. nullopt when neither
// header parses.
std::optional<int64_t> RetryAfterMillis(const Headers& headers);

// Parsed /account/container/object path. `object` may contain slashes
// (Swift pseudo-directories).
struct ObjectPath {
  std::string account;
  std::string container;
  std::string object;

  bool IsAccount() const { return container.empty(); }
  bool IsContainer() const { return !container.empty() && object.empty(); }
  bool IsObject() const { return !object.empty(); }

  // Canonical string form "/account[/container[/object]]".
  std::string ToString() const;

  // Parses "/account/container/object"; container and object are optional.
  static Result<ObjectPath> Parse(std::string_view path);
};

// A half-open byte range [first, last] inclusive, after resolution against
// an object size. Mirrors the subset of RFC 7233 Swift supports.
struct ByteRange {
  uint64_t first = 0;
  uint64_t last = 0;  // inclusive

  uint64_t length() const { return last - first + 1; }

  // Parses "bytes=first-last" | "bytes=first-" | "bytes=-suffix" and
  // resolves it against `object_size`. Errors on unsatisfiable ranges.
  static Result<ByteRange> Parse(std::string_view header_value,
                                 uint64_t object_size);
};

// A parsed "bytes first-last/total" Content-Range *response* header —
// the window a 206 body covers. Shared by the storlet middleware's
// record-alignment logic and the proxy's mid-stream failover (which must
// resume a partial body at an absolute object offset).
struct ContentRange {
  uint64_t first = 0;
  uint64_t last = 0;  // inclusive
  uint64_t total = 0;

  static Result<ContentRange> Parse(std::string_view header_value);
};

struct Request {
  HttpMethod method = HttpMethod::kGet;
  std::string path;
  Headers headers;
  std::string body;

  static Request Get(std::string path) {
    Request r;
    r.method = HttpMethod::kGet;
    r.path = std::move(path);
    return r;
  }
  static Request Put(std::string path, std::string body) {
    Request r;
    r.method = HttpMethod::kPut;
    r.path = std::move(path);
    r.body = std::move(body);
    return r;
  }
  static Request Delete(std::string path) {
    Request r;
    r.method = HttpMethod::kDelete;
    r.path = std::move(path);
    return r;
  }
  static Request Head(std::string path) {
    Request r;
    r.method = HttpMethod::kHead;
    r.path = std::move(path);
    return r;
  }
};

// A response whose body is either an eager string or a lazy ByteStream.
// Handlers along the data path forward the stream untouched; edges that
// need the whole payload call body(), which drains the stream once
// (merging any trailers the producer published at EOF and fixing
// Content-Length). A streamed response whose producer fails mid-stream
// turns into a 500 at materialization — in-process, the status is not
// committed until someone looks at it.
class HttpResponse {
 public:
  int status = 200;
  Headers headers;

  bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse Make(int status, std::string body = "") {
    HttpResponse r;
    r.status = status;
    r.body_ = std::move(body);
    return r;
  }

  // --- Buffered access -----------------------------------------------------

  // The materialized body. Drains the stream on first use; may flip the
  // response to a 500 if the stream fails, so check ok() afterwards when
  // the body came from a pushdown pipeline.
  const std::string& body() {
    Materialize();
    return body_;
  }
  // Const access never materializes: returns the eager body, empty for a
  // still-streamed response. Data-path code uses the non-const overload.
  const std::string& body() const { return body_; }

  std::string& mutable_body() {
    Materialize();
    return body_;
  }
  std::string TakeBody() {
    Materialize();
    return std::move(body_);
  }
  void set_body(std::string data) {
    stream_.reset();
    trailers_.reset();
    body_ = std::move(data);
  }

  // Drains a streamed body into body_ (no-op when already materialized).
  void Materialize();

  // --- Streaming access ----------------------------------------------------

  bool streamed() const { return stream_ != nullptr; }

  // Attaches a lazy body. `trailers`, when given, is filled by the
  // producer at EOF and merged into `headers` on materialization;
  // streaming consumers read it themselves after draining.
  void SetBodyStream(std::shared_ptr<ByteStream> stream,
                     std::shared_ptr<const Headers> trailers = nullptr) {
    body_.clear();
    stream_ = std::move(stream);
    trailers_ = std::move(trailers);
  }

  // Hands the body over as a stream (wrapping an eager body in a
  // StringByteStream). The response's own body becomes empty.
  std::shared_ptr<ByteStream> TakeBodyStream();

  std::shared_ptr<const Headers> trailers() const { return trailers_; }

  // Bytes the body will contain, when knowable without draining: the
  // materialized size, the stream's size hint, or Content-Length.
  std::optional<uint64_t> BodySizeHint() const;

 private:
  std::string body_;
  std::shared_ptr<ByteStream> stream_;
  std::shared_ptr<const Headers> trailers_;
};

// A request handler; middlewares wrap handlers into new handlers, forming
// the WSGI-like pipelines Swift runs on proxies and object servers.
using HttpHandler = std::function<HttpResponse(Request&)>;

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_HTTP_H_
