#ifndef SCOOP_OBJECTSTORE_HTTP_H_
#define SCOOP_OBJECTSTORE_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scoop {

// The object store speaks an HTTP-like request/response protocol, exactly
// rich enough for the Swift data path Scoop depends on: verbs, a
// /account/container/object path, headers (the carrier of pushdown-task
// metadata), byte ranges, and a body.

enum class HttpMethod { kGet, kPut, kPost, kDelete, kHead };

std::string_view HttpMethodName(HttpMethod method);

// Case-insensitive header map, per RFC 7230 field-name semantics.
class Headers {
 public:
  void Set(std::string_view name, std::string value);
  // Returns the header value or nullopt.
  std::optional<std::string> Get(std::string_view name) const;
  // Returns the header value or `fallback`.
  std::string GetOr(std::string_view name, std::string fallback) const;
  bool Has(std::string_view name) const;
  void Remove(std::string_view name);
  size_t size() const { return map_.size(); }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::string, CaseInsensitiveLess> map_;
};

// Parsed /account/container/object path. `object` may contain slashes
// (Swift pseudo-directories).
struct ObjectPath {
  std::string account;
  std::string container;
  std::string object;

  bool IsAccount() const { return container.empty(); }
  bool IsContainer() const { return !container.empty() && object.empty(); }
  bool IsObject() const { return !object.empty(); }

  // Canonical string form "/account[/container[/object]]".
  std::string ToString() const;

  // Parses "/account/container/object"; container and object are optional.
  static Result<ObjectPath> Parse(std::string_view path);
};

// A half-open byte range [first, last] inclusive, after resolution against
// an object size. Mirrors the subset of RFC 7233 Swift supports.
struct ByteRange {
  uint64_t first = 0;
  uint64_t last = 0;  // inclusive

  uint64_t length() const { return last - first + 1; }

  // Parses "bytes=first-last" | "bytes=first-" | "bytes=-suffix" and
  // resolves it against `object_size`. Errors on unsatisfiable ranges.
  static Result<ByteRange> Parse(std::string_view header_value,
                                 uint64_t object_size);
};

struct Request {
  HttpMethod method = HttpMethod::kGet;
  std::string path;
  Headers headers;
  std::string body;

  static Request Get(std::string path) {
    Request r;
    r.method = HttpMethod::kGet;
    r.path = std::move(path);
    return r;
  }
  static Request Put(std::string path, std::string body) {
    Request r;
    r.method = HttpMethod::kPut;
    r.path = std::move(path);
    r.body = std::move(body);
    return r;
  }
  static Request Delete(std::string path) {
    Request r;
    r.method = HttpMethod::kDelete;
    r.path = std::move(path);
    return r;
  }
  static Request Head(std::string path) {
    Request r;
    r.method = HttpMethod::kHead;
    r.path = std::move(path);
    return r;
  }
};

struct HttpResponse {
  int status = 200;
  Headers headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse Make(int status, std::string body = "") {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

// A request handler; middlewares wrap handlers into new handlers, forming
// the WSGI-like pipelines Swift runs on proxies and object servers.
using HttpHandler = std::function<HttpResponse(Request&)>;

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_HTTP_H_
