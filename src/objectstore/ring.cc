#include "objectstore/ring.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/hash.h"

namespace scoop {

Result<Ring> Ring::Build(std::vector<RingDevice> devices, int part_power,
                         int replica_count) {
  if (devices.empty()) return Status::InvalidArgument("ring needs devices");
  if (part_power < 0 || part_power > 20) {
    return Status::InvalidArgument("part_power out of [0, 20]");
  }
  if (replica_count < 1) {
    return Status::InvalidArgument("replica_count must be >= 1");
  }
  double total_weight = 0.0;
  for (size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].weight <= 0.0) {
      return Status::InvalidArgument("device weight must be positive");
    }
    devices[i].id = static_cast<int>(i);
    total_weight += devices[i].weight;
  }

  Ring ring;
  ring.part_power_ = part_power;
  ring.replica_count_ = replica_count;
  ring.devices_ = std::move(devices);

  const int parts = ring.partition_count();
  const auto& devs = ring.devices_;
  // Greedy weighted assignment: every replica slot goes to the eligible
  // device that is currently furthest below its weight-proportional share.
  // Eligibility prefers (in order) devices not already holding a replica of
  // the partition, in an unused zone, then on an unused node.
  std::vector<double> assigned(devs.size(), 0.0);
  ring.assignment_.assign(parts, {});
  const double total_slots = static_cast<double>(parts) * replica_count;

  for (int p = 0; p < parts; ++p) {
    std::set<int> used_devices;
    std::set<int> used_zones;
    std::set<int> used_nodes;
    for (int r = 0; r < replica_count; ++r) {
      int best = -1;
      double best_score = std::numeric_limits<double>::infinity();
      for (const RingDevice& d : devs) {
        if (used_devices.count(d.id)) continue;
        double share = d.weight / total_weight * total_slots;
        double fill = assigned[d.id] / share;
        // Dispersion penalties dominate fill level so replicas land in
        // distinct zones/nodes whenever the topology allows it.
        double penalty = 0.0;
        if (used_zones.count(d.zone)) penalty += 10.0;
        if (used_nodes.count(d.node)) penalty += 5.0;
        // Deterministic jitter breaks ties without biasing any device.
        double jitter =
            static_cast<double>(Mix64(HashCombine(
                static_cast<uint64_t>(p) * 131 + static_cast<uint64_t>(r),
                static_cast<uint64_t>(d.id))) &
                                0xffff) *
            1e-9;
        double score = fill + penalty + jitter;
        if (score < best_score) {
          best_score = score;
          best = d.id;
        }
      }
      // `best` is always found: used_devices has fewer entries than devs
      // or we allow reuse as a last resort.
      if (best < 0) {
        best = devs[static_cast<size_t>(p + r) % devs.size()].id;
      }
      ring.assignment_[p].push_back(best);
      assigned[best] += 1.0;
      used_devices.insert(best);
      used_zones.insert(devs[best].zone);
      used_nodes.insert(devs[best].node);
    }
  }
  return ring;
}

Result<Ring> Ring::AddDevices(std::vector<RingDevice> added) const {
  if (added.empty()) return Status::InvalidArgument("no devices to add");
  Ring ring = *this;
  for (RingDevice& d : added) {
    if (d.weight <= 0.0) {
      return Status::InvalidArgument("device weight must be positive");
    }
    d.id = static_cast<int>(ring.devices_.size());
    ring.devices_.push_back(d);
  }
  const auto& devs = ring.devices_;
  double total_weight = 0.0;
  for (const RingDevice& d : devs) total_weight += d.weight;
  const double total_slots =
      static_cast<double>(ring.partition_count()) * replica_count_;

  std::vector<int> load(devs.size(), 0);
  for (const auto& replicas : ring.assignment_) {
    for (int d : replicas) ++load[d];
  }
  auto share = [&](int id) {
    return devs[id].weight / total_weight * total_slots;
  };

  // Fill each new device up to its share by stealing one replica at a time
  // from the most-overloaded donor whose partition the target may legally
  // hold (no duplicate device; keep node disjointness when possible).
  for (size_t t = devices_.size(); t < devs.size(); ++t) {
    int target = devs[t].id;
    int guard = ring.partition_count() * replica_count_;
    while (load[target] + 1 <= static_cast<int>(share(target)) &&
           guard-- > 0) {
      // Most-overloaded donor relative to its share.
      int donor = -1;
      double worst = 0.0;
      for (const RingDevice& d : devs) {
        if (d.id == target) continue;
        double over = load[d.id] - share(d.id);
        if (over > worst) {
          worst = over;
          donor = d.id;
        }
      }
      if (donor < 0) break;
      // Find a partition of the donor the target can take.
      bool moved = false;
      for (int p = 0; p < ring.partition_count() && !moved; ++p) {
        auto& replicas = ring.assignment_[static_cast<size_t>(p)];
        for (size_t r = 0; r < replicas.size(); ++r) {
          if (replicas[r] != donor) continue;
          bool legal = true;
          for (size_t other = 0; other < replicas.size(); ++other) {
            if (other == r) continue;
            if (replicas[other] == target ||
                devs[replicas[other]].node == devs[target].node) {
              legal = false;
              break;
            }
          }
          if (!legal) break;
          replicas[r] = target;
          --load[donor];
          ++load[target];
          moved = true;
          break;
        }
      }
      if (!moved) break;  // nothing legal left to take from this donor
    }
  }
  return ring;
}

uint32_t Ring::GetPartition(std::string_view key) const {
  if (part_power_ == 0) return 0;
  uint64_t h = Mix64(Fnv1a64(key));
  return static_cast<uint32_t>(h >> (64 - part_power_)) &
         static_cast<uint32_t>(partition_count() - 1);
}

const std::vector<int>& Ring::GetPartitionDevices(uint32_t partition) const {
  return assignment_[partition];
}

const std::vector<int>& Ring::GetNodes(std::string_view key) const {
  return assignment_[GetPartition(key)];
}

int Ring::PrimaryPartitionCount(int device_id) const {
  int count = 0;
  for (const auto& replicas : assignment_) {
    if (!replicas.empty() && replicas[0] == device_id) ++count;
  }
  return count;
}

std::vector<int> Ring::ReplicaCountsPerDevice() const {
  std::vector<int> counts(devices_.size(), 0);
  for (const auto& replicas : assignment_) {
    for (int d : replicas) ++counts[d];
  }
  return counts;
}

}  // namespace scoop
