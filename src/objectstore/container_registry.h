// Account/container metadata service — the role Swift's account and
// container rings play: which accounts and containers exist, and what
// objects they hold, so proxies can serve listings and validate writes.
// Locking per DESIGN.md §3d (rank lockrank::kContainerRegistry, leaf).
#ifndef SCOOP_OBJECTSTORE_CONTAINER_REGISTRY_H_
#define SCOOP_OBJECTSTORE_CONTAINER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace scoop {

// Listing entry for one object in a container.
struct ObjectInfo {
  std::string name;
  uint64_t size = 0;
  std::string etag;
};

// Account/container metadata service — the role Swift's account and
// container rings play. Tracks which containers exist and what objects
// they hold so proxies can serve listings and validate writes.
//
// Locking contract: `mu_` (rank lockrank::kContainerRegistry) guards the
// whole account/container/object tree; every public method holds it for
// the duration of the call and results are returned by value. Leaf lock.
class ContainerRegistry {
 public:
  Status CreateAccount(const std::string& account);
  bool AccountExists(const std::string& account) const;

  Status CreateContainer(const std::string& account,
                         const std::string& container);
  Status DeleteContainer(const std::string& account,
                         const std::string& container);
  bool ContainerExists(const std::string& account,
                       const std::string& container) const;
  // Containers of `account`, sorted.
  Result<std::vector<std::string>> ListContainers(
      const std::string& account) const;

  Status RecordObject(const std::string& account, const std::string& container,
                      const ObjectInfo& info);
  Status RemoveObject(const std::string& account, const std::string& container,
                      const std::string& object);
  // Metadata of one object (the cheap ETag probe the proxy-tier result
  // cache keys on). NotFound when the object is not recorded.
  Result<ObjectInfo> GetObjectInfo(const std::string& account,
                                   const std::string& container,
                                   const std::string& object) const;
  // Objects in a container, sorted by name, optionally filtered by prefix.
  Result<std::vector<ObjectInfo>> ListObjects(
      const std::string& account, const std::string& container,
      const std::string& prefix = "") const;

 private:
  mutable Mutex mu_{"container_registry", lockrank::kContainerRegistry};
  // account -> container -> object name -> info
  std::map<std::string, std::map<std::string, std::map<std::string, ObjectInfo>>>
      accounts_ GUARDED_BY(mu_);
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_CONTAINER_REGISTRY_H_
