// Token authentication for the Swift-like store (the tempauth role):
// tenants register with a key, exchange it for a bearer token, and every
// request is validated against the account the token scopes to. Locking
// follows the annotated model of DESIGN.md §3d (rank lockrank::kAuth).
#ifndef SCOOP_OBJECTSTORE_AUTH_H_
#define SCOOP_OBJECTSTORE_AUTH_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/sync.h"
#include "objectstore/middleware.h"

namespace scoop {

inline constexpr char kAuthTokenHeader[] = "X-Auth-Token";

// Stamped (never trusted from the client) by AuthMiddleware after token
// validation: the authenticated account's service tier, so downstream
// QoS admission and tier-gated pushdown policy need no auth lookup.
inline constexpr char kTenantTierHeader[] = "X-Scoop-Tenant-Tier";

// Service tier of a tenant; §VII's adaptive-pushdown discussion lets
// administrators reserve pushdown for "gold" tenants under load.
enum class TenantTier { kGold, kBronze };

// "gold" / "bronze".
std::string_view TenantTierName(TenantTier tier);

// Parses a tier name; anything unrecognized is kGold (fail open: a
// missing or mangled stamp must not demote a tenant).
TenantTier ParseTenantTier(std::string_view name);

// Keystone-lite identity service: tenants authenticate with a secret key
// and receive a bearer token scoped to their account.
//
// Locking contract: `mu_` (rank lockrank::kAuth) guards every table and
// the token sequence; each public method is one critical section. Leaf
// lock — token validation in the middleware never nests another Mutex.
class AuthService {
 public:
  // Registers `tenant` with secret `key`, owning account `account`.
  Status RegisterTenant(const std::string& tenant, const std::string& key,
                        const std::string& account,
                        TenantTier tier = TenantTier::kGold);

  // Returns a token when `key` matches the registered secret.
  Result<std::string> IssueToken(const std::string& tenant,
                                 const std::string& key);

  // Maps a token back to the account it is scoped to.
  Result<std::string> ValidateToken(const std::string& token) const;

  Result<TenantTier> GetTier(const std::string& account) const;
  Status SetTier(const std::string& account, TenantTier tier);

 private:
  struct TenantInfo {
    std::string key;
    std::string account;
    TenantTier tier;
  };

  mutable Mutex mu_{"auth", lockrank::kAuth};
  // Keyed by tenant name.
  std::map<std::string, TenantInfo> tenants_ GUARDED_BY(mu_);
  // token -> account
  std::map<std::string, std::string> tokens_ GUARDED_BY(mu_);
  // account -> tier
  std::map<std::string, TenantTier> account_tier_ GUARDED_BY(mu_);
  uint64_t token_seq_ GUARDED_BY(mu_) = 0;
};

// Proxy middleware enforcing that every request carries a valid token for
// the account named in its path (Swift's authorization step, §III-B).
class AuthMiddleware : public Middleware {
 public:
  explicit AuthMiddleware(std::shared_ptr<AuthService> auth)
      : auth_(std::move(auth)) {}

  std::string name() const override { return "auth"; }
  HttpResponse Process(Request& request, const HttpHandler& next) override;

 private:
  std::shared_ptr<AuthService> auth_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_AUTH_H_
