// WSGI-style middleware and the Pipeline that chains them around an
// application handler. Proxies and object servers each run one of these
// pipelines; the storlet engine joins the data path as just another
// middleware (paper §III-B, §V-A).
#ifndef SCOOP_OBJECTSTORE_MIDDLEWARE_H_
#define SCOOP_OBJECTSTORE_MIDDLEWARE_H_

#include <memory>
#include <string>
#include <vector>

#include "objectstore/http.h"

namespace scoop {

// A WSGI-style middleware: sees the request on the way in, delegates to
// `next`, and may rewrite the response on the way out. Both Swift proxies
// and object servers run configurable pipelines of these; the Storlet
// engine plugs into the data path as one of them (paper §III-B, §V-A).
class Middleware {
 public:
  virtual ~Middleware() = default;

  virtual std::string name() const = 0;
  virtual HttpResponse Process(Request& request, const HttpHandler& next) = 0;
};

// An ordered middleware chain terminated by an application handler.
// Middlewares are invoked first-to-last around the application.
class Pipeline {
 public:
  // `app` handles requests that reach the end of the chain.
  explicit Pipeline(HttpHandler app) : app_(std::move(app)) {}

  // Appends `middleware` to the chain (outermost first).
  void Use(std::shared_ptr<Middleware> middleware);

  // Names of installed middlewares in invocation order.
  std::vector<std::string> MiddlewareNames() const;

  HttpResponse Handle(Request& request) const;

 private:
  HttpHandler app_;
  std::vector<std::shared_ptr<Middleware>> chain_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_MIDDLEWARE_H_
