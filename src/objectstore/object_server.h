// The object server: one storage node's request handler, running its own
// middleware pipeline (storlet engine included — this is where pushdown
// filters execute, next to the disks) over the node's StorageDevices.
// Serves ranged GETs chunk by chunk with per-chunk checksum verification
// and records objectserver.get_us/put_us handler latency (METRICS.md).
#ifndef SCOOP_OBJECTSTORE_OBJECT_SERVER_H_
#define SCOOP_OBJECTSTORE_OBJECT_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "objectstore/device.h"
#include "objectstore/http.h"
#include "objectstore/middleware.h"

namespace scoop {

// Backend headers used on the proxy -> object-server hop.
inline constexpr char kBackendDeviceHeader[] = "X-Backend-Device";
inline constexpr char kTimestampHeader[] = "X-Timestamp";
inline constexpr char kEtagHeader[] = "ETag";
inline constexpr char kContentLengthHeader[] = "Content-Length";
inline constexpr char kRangeHeader[] = "Range";

// A Swift object server: owns the devices of one storage node and serves
// replica-level GET/PUT/DELETE/HEAD. Requests arrive through this node's
// middleware pipeline, which is where the Storlet object-node stage hooks
// in — computations run here, next to the disk, exactly as §V-A argues
// they should (no full-object transfer to a proxy, higher parallelism).
class ObjectServer {
 public:
  // `node_id` identifies this node; `device_ids` are ring device ids local
  // to this node. `metrics` (optional) receives per-node traffic counters.
  ObjectServer(int node_id, const std::vector<int>& device_ids,
               MetricRegistry* metrics);

  int node_id() const { return node_id_; }

  // The middleware pipeline in front of the storage application.
  Pipeline& pipeline() { return *pipeline_; }

  // Entry point for proxy-to-object-server requests. The request must
  // carry X-Backend-Device naming one of this node's devices.
  HttpResponse Handle(Request& request);

  Device* GetDevice(int device_id);
  const std::vector<std::shared_ptr<Device>>& devices() const {
    return devices_;
  }

  // Computes the ETag Swift would store for `data`.
  static std::string ComputeEtag(const std::string& data);

  // Chunk granularity GET bodies are produced at (test hook; consumers
  // pulling with larger buffers still receive at most this much per read).
  void set_chunk_size(size_t chunk_size) {
    chunk_size_ = chunk_size == 0 ? 1 : chunk_size;
  }
  size_t chunk_size() const { return chunk_size_; }

 private:
  HttpResponse App(Request& request);
  HttpResponse DoGet(Request& request, Device& device, const ObjectPath& path);
  HttpResponse DoPut(Request& request, Device& device, const ObjectPath& path);
  HttpResponse DoDelete(Device& device, const ObjectPath& path);
  HttpResponse DoHead(Device& device, const ObjectPath& path);

  const int node_id_;
  size_t chunk_size_ = kDefaultStreamChunk;
  std::vector<std::shared_ptr<Device>> devices_;
  std::map<int, Device*> devices_by_id_;
  MetricRegistry* metrics_;
  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_OBJECT_SERVER_H_
