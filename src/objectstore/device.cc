#include "objectstore/device.h"

#include "common/failpoint.h"
#include "common/hash.h"

namespace scoop {

std::vector<uint64_t> ComputeChunkHashes(std::string_view data) {
  std::vector<uint64_t> hashes;
  hashes.reserve((data.size() + kIntegrityChunkSize - 1) /
                 kIntegrityChunkSize);
  for (size_t off = 0; off < data.size(); off += kIntegrityChunkSize) {
    hashes.push_back(Fnv1a64(
        data.substr(off, std::min(kIntegrityChunkSize, data.size() - off))));
  }
  return hashes;
}

Status Device::Put(const std::string& path, StoredObject object) {
  SCOOP_FAILPOINT_KEYED("device.write", key_);
  MutexLock lock(mu_);
  if (failed_) return Status::IOError("device failed");
  auto it = objects_.find(path);
  if (it != objects_.end() && it->second->timestamp > object.timestamp) {
    // Last-write-wins: an older write never clobbers a newer object.
    return Status::OK();
  }
  objects_[path] = std::make_shared<const StoredObject>(std::move(object));
  return Status::OK();
}

Result<StoredObject> Device::Get(const std::string& path) const {
  SCOOP_ASSIGN_OR_RETURN(std::shared_ptr<const StoredObject> shared,
                         GetShared(path));
  return *shared;
}

Result<std::shared_ptr<const StoredObject>> Device::GetShared(
    const std::string& path) const {
  SCOOP_FAILPOINT_KEYED("device.read", key_);
  MutexLock lock(mu_);
  if (failed_) return Status::IOError("device failed");
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("no object at " + path);
  return it->second;
}

Status Device::Delete(const std::string& path) {
  SCOOP_FAILPOINT_KEYED("device.delete", key_);
  MutexLock lock(mu_);
  if (failed_) return Status::IOError("device failed");
  if (objects_.erase(path) == 0) return Status::NotFound("no object at " + path);
  return Status::OK();
}

bool Device::Exists(const std::string& path) const {
  MutexLock lock(mu_);
  if (failed_) return false;
  return objects_.find(path) != objects_.end();
}

std::vector<std::string> Device::ListPaths() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [path, obj] : objects_) out.push_back(path);
  return out;
}

uint64_t Device::TotalBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, obj] : objects_) total += obj->data.size();
  return total;
}

size_t Device::ObjectCount() const {
  MutexLock lock(mu_);
  return objects_.size();
}

bool Device::failed() const {
  MutexLock lock(mu_);
  return failed_;
}

void Device::SetFailed(bool failed) {
  MutexLock lock(mu_);
  failed_ = failed;
}

void Device::Wipe() {
  MutexLock lock(mu_);
  objects_.clear();
}

}  // namespace scoop
