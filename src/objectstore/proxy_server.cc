#include "objectstore/proxy_server.h"

#include "common/strings.h"
#include "objectstore/object_server.h"

namespace scoop {

ProxyServer::ProxyServer(int proxy_id, const Ring* ring,
                         std::shared_ptr<ContainerRegistry> registry,
                         BackendFn backend, MetricRegistry* metrics)
    : proxy_id_(proxy_id),
      ring_(ring),
      registry_(std::move(registry)),
      backend_(std::move(backend)),
      metrics_(metrics) {
  pipeline_ = std::make_unique<Pipeline>(
      [this](Request& request) { return App(request); });
}

HttpResponse ProxyServer::Handle(Request& request) {
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("proxy_%d.requests", proxy_id_))
        ->Increment();
  }
  HttpResponse response = pipeline_->Handle(request);
  if (metrics_ != nullptr) {
    Counter* bytes_out =
        metrics_->GetCounter(StrFormat("proxy_%d.bytes_out", proxy_id_));
    auto hint = response.BodySizeHint();
    if (hint) {
      bytes_out->Add(static_cast<int64_t>(*hint));
    } else {
      // Unknown size (a running pushdown pipeline): count on the way out.
      response.SetBodyStream(std::make_shared<CountingByteStream>(
                                 response.TakeBodyStream(), bytes_out),
                             response.trailers());
    }
  }
  return response;
}

HttpResponse ProxyServer::App(Request& request) {
  auto path = ObjectPath::Parse(request.path);
  if (!path.ok()) return HttpResponse::Make(400, path.status().ToString());
  if (path->IsObject()) return HandleObject(request, *path);
  if (path->IsContainer()) return HandleContainer(request, *path);
  return HandleAccount(request, *path);
}

HttpResponse ProxyServer::HandleAccount(Request& request,
                                        const ObjectPath& path) {
  switch (request.method) {
    case HttpMethod::kPut:
      registry_->CreateAccount(path.account);
      return HttpResponse::Make(201);
    case HttpMethod::kGet: {
      auto containers = registry_->ListContainers(path.account);
      if (!containers.ok()) return HttpResponse::Make(404);
      HttpResponse response = HttpResponse::Make(200);
      response.set_body(Join(*containers, "\n"));
      return response;
    }
    case HttpMethod::kHead:
      return registry_->AccountExists(path.account) ? HttpResponse::Make(204)
                                                    : HttpResponse::Make(404);
    default:
      return HttpResponse::Make(405);
  }
}

HttpResponse ProxyServer::HandleContainer(Request& request,
                                          const ObjectPath& path) {
  switch (request.method) {
    case HttpMethod::kPut: {
      Status s = registry_->CreateContainer(path.account, path.container);
      if (s.IsNotFound()) return HttpResponse::Make(404, s.ToString());
      return HttpResponse::Make(201);
    }
    case HttpMethod::kDelete: {
      Status s = registry_->DeleteContainer(path.account, path.container);
      if (s.IsNotFound()) return HttpResponse::Make(404, s.ToString());
      if (!s.ok()) return HttpResponse::Make(409, s.ToString());
      return HttpResponse::Make(204);
    }
    case HttpMethod::kGet: {
      std::string prefix = request.headers.GetOr("X-Prefix", "");
      auto objects = registry_->ListObjects(path.account, path.container,
                                            prefix);
      if (!objects.ok()) return HttpResponse::Make(404);
      HttpResponse response = HttpResponse::Make(200);
      // Listing format: "name size etag", one object per line.
      std::string listing;
      for (const ObjectInfo& info : *objects) {
        listing += StrFormat("%s %llu %s\n", info.name.c_str(),
                             static_cast<unsigned long long>(info.size),
                             info.etag.c_str());
      }
      response.set_body(std::move(listing));
      return response;
    }
    case HttpMethod::kHead:
      return registry_->ContainerExists(path.account, path.container)
                 ? HttpResponse::Make(204)
                 : HttpResponse::Make(404);
    default:
      return HttpResponse::Make(405);
  }
}

HttpResponse ProxyServer::SendToDevice(int device_id, Request& request) {
  request.headers.Set(kBackendDeviceHeader, std::to_string(device_id));
  return backend_(device_id, request);
}

HttpResponse ProxyServer::HandleObject(Request& request,
                                       const ObjectPath& path) {
  if (!registry_->ContainerExists(path.account, path.container)) {
    return HttpResponse::Make(404, "container does not exist");
  }
  const std::vector<int>& replicas = ring_->GetNodes(request.path);
  switch (request.method) {
    case HttpMethod::kPut: {
      // One timestamp for all replicas: last-write-wins convergence.
      request.headers.Set(kTimestampHeader,
                          std::to_string(timestamp_seq_.fetch_add(1)));
      int successes = 0;
      std::string etag;
      for (int device : replicas) {
        Request replica_request = request;
        HttpResponse r = SendToDevice(device, replica_request);
        if (r.ok()) {
          ++successes;
          etag = r.headers.GetOr(kEtagHeader, etag);
        }
      }
      // Swift writes succeed on a majority quorum.
      if (successes * 2 <= static_cast<int>(replicas.size())) {
        return HttpResponse::Make(503, "write quorum not met");
      }
      registry_->RecordObject(
          path.account, path.container,
          ObjectInfo{path.object, request.body.size(), etag});
      HttpResponse response = HttpResponse::Make(201);
      response.headers.Set(kEtagHeader, etag);
      return response;
    }
    case HttpMethod::kGet:
    case HttpMethod::kHead: {
      HttpResponse last = HttpResponse::Make(404);
      for (int device : replicas) {
        Request replica_request = request;
        HttpResponse r = SendToDevice(device, replica_request);
        if (r.ok()) return r;
        last = std::move(r);
      }
      return last;
    }
    case HttpMethod::kDelete: {
      int successes = 0;
      for (int device : replicas) {
        Request replica_request = request;
        HttpResponse r = SendToDevice(device, replica_request);
        if (r.ok() || r.status == 404) ++successes;
      }
      if (successes == 0) return HttpResponse::Make(503, "delete failed");
      registry_->RemoveObject(path.account, path.container, path.object);
      return HttpResponse::Make(204);
    }
    default:
      return HttpResponse::Make(405);
  }
}

}  // namespace scoop
