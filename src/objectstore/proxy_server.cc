#include "objectstore/proxy_server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/strings.h"
#include "objectstore/object_server.h"

namespace scoop {

namespace {

// Fails any single streamed Read that takes longer than `deadline_us` —
// the "slow replica" detector of the fault model. A healthy in-memory
// read completes in microseconds, so only a genuinely stalled producer
// (e.g. an injected device latency) trips the budget; the failover layer
// above then resumes the stream from another replica.
class ReadDeadlineByteStream : public ByteStream {
 public:
  ReadDeadlineByteStream(std::shared_ptr<ByteStream> inner,
                         int64_t deadline_us)
      : inner_(std::move(inner)), deadline_us_(deadline_us) {}

  Result<size_t> Read(char* buf, size_t n) override {
    Stopwatch watch;
    Result<size_t> r = inner_->Read(buf, n);
    if (r.ok() && watch.ElapsedSeconds() * 1e6 > deadline_us_) {
      // The bytes arrived too late to count; the caller resumes them from
      // a healthier replica.
      return Status::DeadlineExceeded("replica read exceeded " +
                                      std::to_string(deadline_us_) + "us");
    }
    return r;
  }
  std::optional<uint64_t> SizeHint() const override {
    return inner_->SizeHint();
  }

 private:
  std::shared_ptr<ByteStream> inner_;
  const int64_t deadline_us_;
};

}  // namespace

// Resumes a raw object-body stream from the next replica when the current
// one fails mid-transfer (IO error, corrupt chunk, drop, read deadline).
// The resume request asks for "Range: bytes=<base+delivered>-<end>", so
// the client observes one seamless byte sequence. Only raw bodies (no
// X-Storlet-Executed) are resumable — filtered output offsets don't map
// back to object offsets, so storlet streams fail fast and the client's
// pushdown fallback ladder takes over instead.
class FailoverByteStream : public ByteStream {
 public:
  FailoverByteStream(std::shared_ptr<ByteStream> inner, ProxyServer* proxy,
                     Request request_template, std::string canonical_path,
                     std::vector<int> other_replicas, uint64_t base_offset,
                     uint64_t end_offset, Rng rng)
      : inner_(std::move(inner)),
        proxy_(proxy),
        request_(std::move(request_template)),
        canonical_path_(std::move(canonical_path)),
        other_replicas_(std::move(other_replicas)),
        base_offset_(base_offset),
        end_offset_(end_offset),
        rng_(rng) {}

  Result<size_t> Read(char* buf, size_t n) override {
    for (;;) {
      Result<size_t> r = inner_->Read(buf, n);
      if (r.ok()) {
        delivered_ += *r;
        return r;
      }
      // NotFound is authoritative (the object is gone, not the replica);
      // everything else is a replica fault worth failing over.
      if (r.status().IsNotFound()) return r;
      if (base_offset_ + delivered_ > end_offset_) {
        // Every window byte was already delivered; a producer error at the
        // EOF boundary loses nothing.
        return static_cast<size_t>(0);
      }
      SCOOP_RETURN_IF_ERROR(Resume(r.status()));
    }
  }

  std::optional<uint64_t> SizeHint() const override {
    return end_offset_ + 1 - base_offset_ - delivered_;
  }

 private:
  // Swaps inner_ for a range-resumed stream from the next untried replica;
  // returns `cause` once no replica can continue the byte sequence.
  Status Resume(const Status& cause) {
    uint64_t resume_abs = base_offset_ + delivered_;
    while (next_replica_ < other_replicas_.size()) {
      int device = other_replicas_[next_replica_++];
      ++attempt_;
      proxy_->CountRetry();
      proxy_->Backoff(attempt_, &rng_);
      Request retry = request_;
      retry.headers.Set(kRangeHeader,
                        StrFormat("bytes=%llu-%llu",
                                  static_cast<unsigned long long>(resume_abs),
                                  static_cast<unsigned long long>(end_offset_)));
      HttpResponse response = proxy_->SendToDevice(device, retry);
      if (!response.ok()) continue;
      // A resumed raw body must still be raw.
      if (response.headers.Has("X-Storlet-Executed")) continue;
      std::shared_ptr<ByteStream> stream = response.TakeBodyStream();
      if (proxy_->retry_policy().read_deadline_us > 0) {
        stream = std::make_shared<ReadDeadlineByteStream>(
            std::move(stream), proxy_->retry_policy().read_deadline_us);
      }
      inner_ = std::move(stream);
      proxy_->CountFailover(canonical_path_);
      return Status::OK();
    }
    return cause;
  }

  std::shared_ptr<ByteStream> inner_;
  ProxyServer* proxy_;
  Request request_;
  const std::string canonical_path_;
  const std::vector<int> other_replicas_;
  size_t next_replica_ = 0;
  const uint64_t base_offset_;
  const uint64_t end_offset_;  // inclusive absolute last byte of the window
  uint64_t delivered_ = 0;
  int attempt_ = 0;
  Rng rng_;
};

ProxyServer::ProxyServer(int proxy_id, const Ring* ring,
                         std::shared_ptr<ContainerRegistry> registry,
                         BackendFn backend, MetricRegistry* metrics,
                         ProxyRetryPolicy policy,
                         ReadRepairQueue* repair_queue)
    : proxy_id_(proxy_id),
      ring_(ring),
      registry_(std::move(registry)),
      backend_(std::move(backend)),
      metrics_(metrics),
      policy_(policy),
      repair_queue_(repair_queue) {
  if (metrics_ != nullptr) {
    // Cached so stream-context increments never touch the registry map.
    retries_counter_ = metrics_->GetCounter("proxy.retries");
    failovers_counter_ = metrics_->GetCounter("proxy.failovers");
  }
  pipeline_ = std::make_unique<Pipeline>(
      [this](Request& request) { return App(request); });
}

void ProxyServer::Backoff(int attempt, Rng* rng, int64_t floor_us) const {
  if (attempt <= 1) return;
  int64_t jittered = 0;
  if (policy_.backoff_base_us > 0) {
    int64_t backoff = policy_.backoff_base_us;
    for (int i = 2; i < attempt && backoff < policy_.backoff_max_us; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, policy_.backoff_max_us);
    // Jitter in [backoff/2, backoff): decorrelates concurrent retriers
    // while staying deterministic for a given seed.
    jittered = backoff / 2 + rng->NextInt(0, backoff / 2);
  }
  // A backend's advertised Retry-After is the floor, not a suggestion —
  // but cap it so one extravagant hint cannot stall the read path past
  // its own attempt budget.
  constexpr int64_t kMaxFloorUs = 250'000;
  int64_t wait = std::max(jittered, std::min(floor_us, kMaxFloorUs));
  if (wait <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(wait));
}

void ProxyServer::CountRetry() {
  if (retries_counter_ != nullptr) retries_counter_->Increment();
}

void ProxyServer::CountFailover(const std::string& path) {
  if (failovers_counter_ != nullptr) failovers_counter_->Increment();
  if (repair_queue_ != nullptr) repair_queue_->Enqueue(path);
}

HttpResponse ProxyServer::Handle(Request& request) {
  struct InflightGuard {
    std::atomic<int64_t>* n;
    ~InflightGuard() { n->fetch_sub(1, std::memory_order_relaxed); }
  };
  inflight_.fetch_add(1, std::memory_order_relaxed);
  InflightGuard inflight_guard{&inflight_};
  // Child of the caller's context (Stocator / SwiftClient); roots a new
  // trace when the client did not stamp one.
  TraceSpan span("proxy.request", TraceContextFromHeaders(request.headers));
  if (span.active()) {
    span.SetTag("proxy", std::to_string(proxy_id_));
    span.SetTag("method", std::string(HttpMethodName(request.method)));
    span.SetTag("path", request.path);
    StampTraceContext(span.context(), &request.headers);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("proxy_%d.requests", proxy_id_))
        ->Increment();
  }
  Stopwatch watch;
  HttpResponse response = pipeline_->Handle(request);
  if (metrics_ != nullptr) {
    // Handler latency: time to the response head. A streamed body (the
    // pushdown pipeline) is drained later by the caller, so full-transfer
    // latency lives in stocator.read_us, not here (DESIGN.md §3f).
    int64_t us = static_cast<int64_t>(watch.ElapsedSeconds() * 1e6);
    if (request.method == HttpMethod::kGet) {
      metrics_->GetHistogram("proxy.get_us")->Record(us);
    } else if (request.method == HttpMethod::kPut) {
      metrics_->GetHistogram("proxy.put_us")->Record(us);
    }
  }
  if (span.active()) span.SetTag("status", std::to_string(response.status));
  if (metrics_ != nullptr) {
    Counter* bytes_out =
        metrics_->GetCounter(StrFormat("proxy_%d.bytes_out", proxy_id_));
    auto hint = response.BodySizeHint();
    if (hint) {
      bytes_out->Add(static_cast<int64_t>(*hint));
    } else {
      // Unknown size (a running pushdown pipeline): count on the way out.
      response.SetBodyStream(std::make_shared<CountingByteStream>(
                                 response.TakeBodyStream(), bytes_out),
                             response.trailers());
    }
  }
  return response;
}

HttpResponse ProxyServer::App(Request& request) {
  auto path = ObjectPath::Parse(request.path);
  if (!path.ok()) return HttpResponse::Make(400, path.status().ToString());
  if (path->IsObject()) return HandleObject(request, *path);
  if (path->IsContainer()) return HandleContainer(request, *path);
  return HandleAccount(request, *path);
}

HttpResponse ProxyServer::HandleAccount(Request& request,
                                        const ObjectPath& path) {
  switch (request.method) {
    case HttpMethod::kPut: {
      if (Status s = registry_->CreateAccount(path.account); !s.ok()) {
        return HttpResponse::Make(500, s.ToString());
      }
      return HttpResponse::Make(201);
    }
    case HttpMethod::kGet: {
      auto containers = registry_->ListContainers(path.account);
      if (!containers.ok()) return HttpResponse::Make(404);
      HttpResponse response = HttpResponse::Make(200);
      response.set_body(Join(*containers, "\n"));
      return response;
    }
    case HttpMethod::kHead:
      return registry_->AccountExists(path.account) ? HttpResponse::Make(204)
                                                    : HttpResponse::Make(404);
    default:
      return HttpResponse::Make(405);
  }
}

HttpResponse ProxyServer::HandleContainer(Request& request,
                                          const ObjectPath& path) {
  switch (request.method) {
    case HttpMethod::kPut: {
      Status s = registry_->CreateContainer(path.account, path.container);
      if (s.IsNotFound()) return HttpResponse::Make(404, s.ToString());
      return HttpResponse::Make(201);
    }
    case HttpMethod::kDelete: {
      Status s = registry_->DeleteContainer(path.account, path.container);
      if (s.IsNotFound()) return HttpResponse::Make(404, s.ToString());
      if (!s.ok()) return HttpResponse::Make(409, s.ToString());
      return HttpResponse::Make(204);
    }
    case HttpMethod::kGet: {
      std::string prefix = request.headers.GetOr("X-Prefix", "");
      auto objects = registry_->ListObjects(path.account, path.container,
                                            prefix);
      if (!objects.ok()) return HttpResponse::Make(404);
      HttpResponse response = HttpResponse::Make(200);
      // Listing format: "name size etag", one object per line.
      std::string listing;
      for (const ObjectInfo& info : *objects) {
        listing += StrFormat("%s %llu %s\n", info.name.c_str(),
                             static_cast<unsigned long long>(info.size),
                             info.etag.c_str());
      }
      response.set_body(std::move(listing));
      return response;
    }
    case HttpMethod::kHead:
      return registry_->ContainerExists(path.account, path.container)
                 ? HttpResponse::Make(204)
                 : HttpResponse::Make(404);
    default:
      return HttpResponse::Make(405);
  }
}

HttpResponse ProxyServer::SendToDevice(int device_id, Request& request) {
  // The deadline clock covers the whole hop, including any injected
  // network latency ahead of the backend call.
  Stopwatch watch;
  if (FailpointsArmed()) {
    // Chaos hook for the proxy -> object-server hop itself (network-ish
    // faults, as opposed to device faults behind the hop).
    Status fault =
        FailpointCheck("proxy.backend", "d" + std::to_string(device_id));
    if (!fault.ok()) {
      return HttpResponse::Make(fault.IsDeadlineExceeded() ? 504 : 503,
                                fault.ToString());
    }
    if (policy_.attempt_deadline_us > 0 &&
        watch.ElapsedSeconds() * 1e6 > policy_.attempt_deadline_us) {
      // The hop stalled (injected latency) past the attempt budget; give
      // up before even asking the backend.
      return HttpResponse::Make(504, "backend attempt exceeded deadline");
    }
  }
  request.headers.Set(kBackendDeviceHeader, std::to_string(device_id));
  HttpResponse response = backend_(device_id, request);
  if (policy_.attempt_deadline_us > 0 &&
      watch.ElapsedSeconds() * 1e6 > policy_.attempt_deadline_us) {
    // The reply arrived after the attempt deadline; a real proxy would
    // have given up already, so treat it as a gateway timeout.
    return HttpResponse::Make(504, "backend attempt exceeded deadline");
  }
  return response;
}

HttpResponse ProxyServer::ObjectRead(Request& request,
                                     const std::vector<int>& replicas) {
  // Deterministic per-request jitter stream: no shared state, no locks.
  Rng rng(Mix64(Fnv1a64(request.path)) ^
          (static_cast<uint64_t>(proxy_id_) << 32));
  // Parent for the per-attempt spans: the proxy.request span Handle()
  // stamped onto the request headers.
  TraceContext parent = TraceContextFromHeaders(request.headers);
  HttpResponse last = HttpResponse::Make(404);
  int attempt = 0;
  // Backoff floor advertised by the most recent 503 (Retry-After /
  // X-Scoop-Retry-After-Ms); consumed by the next attempt's backoff.
  int64_t retry_floor_us = 0;
  for (int sweep = 0; sweep < std::max(1, policy_.read_sweeps); ++sweep) {
    bool retryable_failure = false;
    for (size_t i = 0; i < replicas.size(); ++i) {
      ++attempt;
      if (attempt > 1) {
        CountRetry();
        Backoff(attempt, &rng, retry_floor_us);
        retry_floor_us = 0;
      }
      Request replica_request = request;
      // One span per replica attempt; a faulted run's trace shows every
      // retry, which fault it healed ("armed"), and where it landed.
      TraceSpan attempt_span("proxy.attempt", parent);
      if (attempt_span.active()) {
        attempt_span.SetTag("device", std::to_string(replicas[i]));
        attempt_span.SetTag("attempt", std::to_string(attempt));
        if (FailpointsArmed()) {
          attempt_span.SetTag("armed",
                              Join(Failpoints::Global().ArmedSites(), ","));
        }
        StampTraceContext(attempt_span.context(), &replica_request.headers);
      }
      HttpResponse r = SendToDevice(replicas[i], replica_request);
      if (attempt_span.active()) {
        attempt_span.SetTag("status", std::to_string(r.status));
      }
      if (!r.ok()) {
        if (r.status != 404) retryable_failure = true;
        if (r.status == 503) {
          if (auto floor_ms = RetryAfterMillis(r.headers)) {
            retry_floor_us = *floor_ms * 1000;
          }
        }
        last = std::move(r);
        continue;
      }
      if (attempt > 1) CountFailover(request.path);
      if (request.method != HttpMethod::kGet || !r.streamed() ||
          r.headers.Has("X-Storlet-Executed")) {
        return r;
      }
      // Wrap the raw body so a mid-stream replica fault resumes from the
      // replicas we have not consumed from yet.
      uint64_t base = 0;
      uint64_t length = r.BodySizeHint().value_or(0);
      if (r.status == 206) {
        auto header = r.headers.Get("Content-Range");
        if (header) {
          auto range = ContentRange::Parse(*header);
          if (range.ok()) base = range->first;
        }
      }
      if (length == 0) return r;  // empty body: nothing to resume
      std::vector<int> others;
      for (size_t j = 0; j < replicas.size(); ++j) {
        if (j != i) others.push_back(replicas[j]);
      }
      std::shared_ptr<ByteStream> stream = r.TakeBodyStream();
      if (policy_.read_deadline_us > 0) {
        stream = std::make_shared<ReadDeadlineByteStream>(
            std::move(stream), policy_.read_deadline_us);
      }
      r.SetBodyStream(std::make_shared<FailoverByteStream>(
                          std::move(stream), this, request, request.path,
                          std::move(others), base, base + length - 1, rng),
                      r.trailers());
      return r;
    }
    if (!retryable_failure) break;  // unanimous 404: the object is gone
  }
  return last;
}

HttpResponse ProxyServer::HandleObject(Request& request,
                                       const ObjectPath& path) {
  if (!registry_->ContainerExists(path.account, path.container)) {
    return HttpResponse::Make(404, "container does not exist");
  }
  const std::vector<int>& replicas = ring_->GetNodes(request.path);
  switch (request.method) {
    case HttpMethod::kPut: {
      // One timestamp for all replicas: last-write-wins convergence.
      request.headers.Set(kTimestampHeader,
                          std::to_string(timestamp_seq_.fetch_add(1)));
      int successes = 0;
      std::string etag;
      for (int device : replicas) {
        Request replica_request = request;
        HttpResponse r = SendToDevice(device, replica_request);
        if (r.ok()) {
          ++successes;
          etag = r.headers.GetOr(kEtagHeader, etag);
        }
      }
      // Swift writes succeed on a majority quorum.
      if (successes * 2 <= static_cast<int>(replicas.size())) {
        return HttpResponse::Make(503, "write quorum not met");
      }
      if (successes < static_cast<int>(replicas.size()) &&
          repair_queue_ != nullptr) {
        // Quorum met but a replica missed the write: known-degraded, heal
        // on the next read-repair pass instead of waiting for a full scan.
        repair_queue_->Enqueue(request.path);
      }
      if (Status s = registry_->RecordObject(
              path.account, path.container,
              ObjectInfo{path.object, request.body.size(), etag});
          !s.ok()) {
        // The container vanished between the existence check above and the
        // metadata write (concurrent container DELETE). The replicas hold
        // orphaned bytes, but the PUT must not claim success against a
        // container that no longer exists — Swift answers 404 here.
        return HttpResponse::Make(404, s.ToString());
      }
      HttpResponse response = HttpResponse::Make(201);
      response.headers.Set(kEtagHeader, etag);
      return response;
    }
    case HttpMethod::kGet:
    case HttpMethod::kHead:
      return ObjectRead(request, replicas);
    case HttpMethod::kDelete: {
      int successes = 0;
      for (int device : replicas) {
        Request replica_request = request;
        HttpResponse r = SendToDevice(device, replica_request);
        if (r.ok() || r.status == 404) ++successes;
      }
      if (successes == 0) return HttpResponse::Make(503, "delete failed");
      // A missing metadata row only means the object was never recorded or
      // a concurrent DELETE already erased it — the devices are clean
      // either way, so the DELETE still succeeded.
      registry_->RemoveObject(path.account, path.container, path.object)
          .IgnoreError();
      return HttpResponse::Make(204);
    }
    default:
      return HttpResponse::Make(405);
  }
}

}  // namespace scoop
