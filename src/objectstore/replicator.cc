#include "objectstore/replicator.h"

#include "common/failpoint.h"
#include "common/strings.h"

namespace scoop {

Replicator::Replicator(const Ring* ring, std::vector<Device*> devices_by_id,
                       MetricRegistry* metrics)
    : ring_(ring), devices_(std::move(devices_by_id)), metrics_(metrics) {}

Replicator::Report Replicator::RunOnce(bool remove_handoffs) {
  TraceSpan span("replicator.run");
  if (span.active()) span.SetTag("mode", "scan");
  Stopwatch watch;
  Report report;
  // Collect the union of object paths across all reachable devices.
  std::set<std::string> all_paths;
  for (Device* device : devices_) {
    if (device == nullptr || device->failed()) continue;
    for (std::string& path : device->ListPaths()) {
      all_paths.insert(std::move(path));
    }
  }
  for (const std::string& path : all_paths) {
    RepairOne(path, remove_handoffs, &report, span.context());
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("replicator.run_us")
        ->Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
  }
  if (span.active()) {
    span.SetTag("scanned", std::to_string(report.objects_scanned));
    span.SetTag("repaired", std::to_string(report.replicas_repaired));
  }
  return report;
}

Replicator::Report Replicator::RepairPaths(
    const std::vector<std::string>& paths) {
  TraceSpan span("replicator.run");
  if (span.active()) span.SetTag("mode", "read_repair");
  Stopwatch watch;
  Report report;
  for (const std::string& path : paths) {
    RepairOne(path, /*remove_handoffs=*/false, &report, span.context());
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("replicator.run_us")
        ->Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
  }
  if (span.active()) {
    span.SetTag("scanned", std::to_string(report.objects_scanned));
    span.SetTag("repaired", std::to_string(report.replicas_repaired));
  }
  return report;
}

void Replicator::RepairOne(const std::string& path, bool remove_handoffs,
                           Report* report, const TraceContext& parent) {
  TraceSpan span("replicator.repair", parent);
  if (span.active()) {
    span.SetTag("path", path);
    if (FailpointsArmed()) {
      span.SetTag("armed", Join(Failpoints::Global().ArmedSites(), ","));
    }
  }
  ++report->objects_scanned;
  const std::vector<int>& replicas = ring_->GetNodes(path);
  // Find the newest available copy.
  StoredObject newest;
  bool found = false;
  for (int device_id : replicas) {
    Device* device = devices_[device_id];
    if (device == nullptr) continue;
    auto copy = device->Get(path);
    if (copy.ok() && (!found || copy->timestamp > newest.timestamp)) {
      newest = std::move(copy).value();
      found = true;
    }
  }
  if (!found) {
    // An object may exist only on devices outside its replica set after a
    // ring change; look everywhere as handoff recovery.
    for (Device* device : devices_) {
      if (device == nullptr || device->failed()) continue;
      auto copy = device->Get(path);
      if (copy.ok() && (!found || copy->timestamp > newest.timestamp)) {
        newest = std::move(copy).value();
        found = true;
      }
    }
  }
  if (!found) {
    report->replicas_unreachable += static_cast<int>(replicas.size());
    if (span.active()) span.SetTag("outcome", "unreachable");
    return;
  }
  int repaired = 0;
  int replicas_in_place = 0;
  for (int device_id : replicas) {
    Device* device = devices_[device_id];
    if (device == nullptr || device->failed()) {
      ++report->replicas_unreachable;
      continue;
    }
    auto existing = device->Get(path);
    if (existing.ok() && existing->timestamp >= newest.timestamp) {
      ++replicas_in_place;
      continue;
    }
    Status push = FailpointCheck("replicator.push", device->failpoint_key());
    if (push.ok()) push = device->Put(path, newest);
    if (push.ok()) {
      ++report->replicas_repaired;
      ++repaired;
      ++replicas_in_place;
    } else {
      // The copy could not be placed (device failed mid-repair or an
      // injected push fault): the replica set is still degraded and the
      // report must say so.
      ++report->replicas_unreachable;
    }
  }
  if (span.active()) span.SetTag("repaired", std::to_string(repaired));
  // Handoff cleanup: only once the object is fully replicated on its
  // assigned devices may stray copies be dropped.
  if (remove_handoffs &&
      replicas_in_place == static_cast<int>(replicas.size())) {
    for (Device* device : devices_) {
      if (device == nullptr || device->failed()) continue;
      bool assigned = false;
      for (int id : replicas) {
        if (device->id() == id) assigned = true;
      }
      if (assigned || !device->Exists(path)) continue;
      if (device->Delete(path).ok()) ++report->handoffs_removed;
    }
  }
}

}  // namespace scoop
