#include "objectstore/cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/strings.h"

namespace scoop {

SwiftCluster::~SwiftCluster() {
  if (fault_counter_ != nullptr) {
    Failpoints::Global().ClearFaultCounter(fault_counter_);
  }
}

Result<std::unique_ptr<SwiftCluster>> SwiftCluster::Create(
    const SwiftConfig& config) {
  if (config.num_proxies < 1 || config.num_storage_nodes < 1 ||
      config.disks_per_node < 1 || config.num_zones < 1) {
    return Status::InvalidArgument("cluster sizes must be positive");
  }
  auto cluster = std::unique_ptr<SwiftCluster>(new SwiftCluster(config));

  // Build the object ring: one device per disk, nodes spread over zones.
  std::vector<RingDevice> devices;
  for (int node = 0; node < config.num_storage_nodes; ++node) {
    for (int disk = 0; disk < config.disks_per_node; ++disk) {
      RingDevice d;
      d.node = node;
      d.zone = node % config.num_zones;
      d.weight = 1.0;
      devices.push_back(d);
    }
  }
  SCOOP_ASSIGN_OR_RETURN(
      cluster->ring_,
      Ring::Build(std::move(devices), config.part_power, config.replica_count));

  // Object servers, each owning the devices the ring placed on its node.
  for (int node = 0; node < config.num_storage_nodes; ++node) {
    std::vector<int> node_devices;
    for (const RingDevice& d : cluster->ring_.devices()) {
      if (d.node == node) node_devices.push_back(d.id);
    }
    cluster->object_servers_.push_back(std::make_unique<ObjectServer>(
        node, node_devices, &cluster->metrics_));
  }
  cluster->device_to_node_.resize(cluster->ring_.devices().size());
  for (const RingDevice& d : cluster->ring_.devices()) {
    cluster->device_to_node_[d.id] = d.node;
  }

  // Proxies forward backend requests by looking up the device's node.
  BackendFn backend = cluster->InProcessBackend();
  for (int p = 0; p < config.num_proxies; ++p) {
    auto proxy = std::make_unique<ProxyServer>(
        p, &cluster->ring_, cluster->registry_, backend, &cluster->metrics_,
        config.retry, &cluster->repair_queue_);
    proxy->pipeline().Use(std::make_shared<AuthMiddleware>(cluster->auth_));
    cluster->proxies_.push_back(std::move(proxy));
  }
  // Mirror failpoint fires into this cluster's metrics so chaos tests can
  // assert "faults.injected" alongside the healing counters. Last cluster
  // created wins the (process-global) registration.
  cluster->fault_counter_ = cluster->metrics_.GetCounter("faults.injected");
  Failpoints::Global().SetFaultCounter(cluster->fault_counter_);
  return cluster;
}

BackendFn SwiftCluster::InProcessBackend() {
  return [this](int device_id, Request& request) -> HttpResponse {
    if (device_id < 0 ||
        device_id >= static_cast<int>(device_to_node_.size())) {
      return HttpResponse::Make(500, "no such device");
    }
    int node = device_to_node_[device_id];
    return object_servers_[node]->Handle(request);
  };
}

HttpResponse SwiftCluster::Handle(Request request) {
  // Two-choice load balancing: compare the round-robin pick against its
  // neighbor and take the less-loaded one. Plain round-robin is blind to
  // storlet queueing, which makes proxies unevenly busy — a light
  // tenant's GET would otherwise wait behind a heavy tenant's backlog.
  uint64_t rr = next_proxy_.fetch_add(1);
  uint64_t idx = rr % proxies_.size();
  if (proxies_.size() > 1) {
    uint64_t alt = (rr + 1) % proxies_.size();
    if (proxies_[alt]->inflight() < proxies_[idx]->inflight()) idx = alt;
  }
  metrics_.GetCounter("lb.requests")->Increment();
  metrics_.GetCounter("lb.bytes_in")
      ->Add(static_cast<int64_t>(request.body.size()));
  HttpResponse response = proxies_[idx]->Handle(request);
  Counter* bytes_out = metrics_.GetCounter("lb.bytes_out");
  auto hint = response.BodySizeHint();
  if (hint) {
    bytes_out->Add(static_cast<int64_t>(*hint));
  } else {
    response.SetBodyStream(std::make_shared<CountingByteStream>(
                               response.TakeBodyStream(), bytes_out),
                           response.trailers());
  }
  return response;
}

Replicator::Report SwiftCluster::RunReplication(bool remove_handoffs) {
  Replicator replicator(&ring_, DevicesById(), &metrics_);
  return replicator.RunOnce(remove_handoffs);
}

Replicator::Report SwiftCluster::RunReadRepair() {
  Replicator replicator(&ring_, DevicesById(), &metrics_);
  return replicator.RepairPaths(repair_queue_.Drain());
}

Result<ObjectServer*> SwiftCluster::AddStorageNode(int disks) {
  if (disks < 1) return Status::InvalidArgument("disks must be >= 1");
  int node = static_cast<int>(object_servers_.size());
  std::vector<RingDevice> added(static_cast<size_t>(disks));
  for (RingDevice& d : added) {
    d.node = node;
    d.zone = node % config_.num_zones;
    d.weight = 1.0;
  }
  SCOOP_ASSIGN_OR_RETURN(Ring rebalanced, ring_.AddDevices(std::move(added)));
  ring_ = std::move(rebalanced);

  std::vector<int> node_devices;
  for (const RingDevice& d : ring_.devices()) {
    if (d.node == node) node_devices.push_back(d.id);
  }
  object_servers_.push_back(
      std::make_unique<ObjectServer>(node, node_devices, &metrics_));
  device_to_node_.resize(ring_.devices().size());
  for (const RingDevice& d : ring_.devices()) {
    device_to_node_[d.id] = d.node;
  }
  config_.num_storage_nodes = node + 1;
  return object_servers_.back().get();
}

std::vector<Device*> SwiftCluster::DevicesById() {
  std::vector<Device*> devices(ring_.devices().size(), nullptr);
  for (auto& server : object_servers_) {
    for (auto& device : server->devices()) {
      devices[device->id()] = device.get();
    }
  }
  return devices;
}

Result<SwiftClient> SwiftClient::Connect(SwiftCluster* cluster,
                                         const std::string& tenant,
                                         const std::string& key,
                                         const std::string& account) {
  return ConnectVia(
      [cluster](Request request) { return cluster->Handle(std::move(request)); },
      cluster->auth(), tenant, key, account);
}

Result<SwiftClient> SwiftClient::ConnectVia(ClientTransportFn transport,
                                            AuthService& auth,
                                            const std::string& tenant,
                                            const std::string& key,
                                            const std::string& account) {
  Status s = auth.RegisterTenant(tenant, key, account);
  if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  SCOOP_ASSIGN_OR_RETURN(std::string token, auth.IssueToken(tenant, key));
  SwiftClient client(std::move(transport), account, token);
  Request create_account = Request::Put("/" + account, "");
  HttpResponse r = client.Send(std::move(create_account));
  if (!r.ok()) {
    return Status::Internal("account creation failed: " +
                            std::to_string(r.status));
  }
  return client;
}

HttpResponse SwiftClient::Send(Request request) {
  request.headers.Set(kAuthTokenHeader, token_);
  // A 503 that advertises Retry-After is explicit backpressure (QoS
  // admission shed, listener at capacity): honor the advertised floor —
  // not a blind exponential — and retry a bounded number of times. A 503
  // without the hint (e.g. quorum failure) is returned as-is; the server
  // did not invite a retry.
  constexpr int kShedRetries = 2;
  constexpr int64_t kMaxShedWaitMs = 2000;
  for (int attempt = 0; attempt < kShedRetries; ++attempt) {
    HttpResponse response = transport_(Request(request));
    if (response.status != 503) return response;
    auto floor_ms = RetryAfterMillis(response.headers);
    if (!floor_ms) return response;
    int64_t wait_ms =
        std::min<int64_t>(std::max<int64_t>(*floor_ms, 1), kMaxShedWaitMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  return transport_(std::move(request));
}

Status SwiftClient::CreateContainer(const std::string& container) {
  HttpResponse r = Send(Request::Put("/" + account_ + "/" + container, ""));
  if (!r.ok()) return Status::Internal("container PUT -> " +
                                       std::to_string(r.status));
  return Status::OK();
}

Status SwiftClient::PutObject(const std::string& container,
                              const std::string& object, std::string data,
                              const Headers& extra) {
  Request request = Request::Put(
      "/" + account_ + "/" + container + "/" + object, std::move(data));
  for (const auto& [name, value] : extra) request.headers.Set(name, value);
  HttpResponse r = Send(std::move(request));
  if (r.status == 404) return Status::NotFound("no container " + container);
  if (!r.ok()) {
    return Status::Internal("object PUT -> " + std::to_string(r.status) +
                            " " + r.body());
  }
  return Status::OK();
}

Result<std::string> SwiftClient::GetObject(const std::string& container,
                                           const std::string& object,
                                           const Headers& extra) {
  Request request =
      Request::Get("/" + account_ + "/" + container + "/" + object);
  for (const auto& [name, value] : extra) request.headers.Set(name, value);
  HttpResponse r = Send(std::move(request));
  if (r.status == 404) return Status::NotFound("no object " + object);
  if (!r.ok()) {
    return Status::Internal("object GET -> " + std::to_string(r.status) +
                            " " + r.body());
  }
  // Materialize *before* trusting the status: a streamed body whose last
  // replica died mid-transfer flips to 500 only once drained.
  std::string body = r.TakeBody();
  if (!r.ok()) {
    return Status::Internal("object GET stream failed: " + r.body());
  }
  return body;
}

Result<std::string> SwiftClient::GetObjectRange(const std::string& container,
                                                const std::string& object,
                                                uint64_t first, uint64_t last,
                                                const Headers& extra) {
  Request request =
      Request::Get("/" + account_ + "/" + container + "/" + object);
  request.headers.Set(kRangeHeader,
                      StrFormat("bytes=%llu-%llu",
                                static_cast<unsigned long long>(first),
                                static_cast<unsigned long long>(last)));
  for (const auto& [name, value] : extra) request.headers.Set(name, value);
  HttpResponse r = Send(std::move(request));
  if (r.status == 404) return Status::NotFound("no object " + object);
  if (r.status == 416) return Status::OutOfRange(r.body());
  if (!r.ok()) {
    return Status::Internal("object GET -> " + std::to_string(r.status) +
                            " " + r.body());
  }
  std::string body = r.TakeBody();
  if (!r.ok()) {
    return Status::Internal("object GET stream failed: " + r.body());
  }
  return body;
}

Status SwiftClient::DeleteObject(const std::string& container,
                                 const std::string& object) {
  HttpResponse r =
      Send(Request::Delete("/" + account_ + "/" + container + "/" + object));
  if (r.status == 404) return Status::NotFound("no object " + object);
  if (!r.ok()) return Status::Internal("object DELETE -> " +
                                       std::to_string(r.status));
  return Status::OK();
}

Result<std::vector<ObjectInfo>> SwiftClient::ListObjects(
    const std::string& container, const std::string& prefix) {
  Request request = Request::Get("/" + account_ + "/" + container);
  if (!prefix.empty()) request.headers.Set("X-Prefix", prefix);
  HttpResponse r = Send(std::move(request));
  if (r.status == 404) return Status::NotFound("no container " + container);
  if (!r.ok()) return Status::Internal("container GET -> " +
                                       std::to_string(r.status));
  std::vector<ObjectInfo> out;
  for (std::string_view line : Split(r.body(), '\n')) {
    if (line.empty()) continue;
    std::vector<std::string_view> fields = Split(line, ' ');
    if (fields.size() != 3) continue;
    ObjectInfo info;
    info.name = std::string(fields[0]);
    auto size = ParseInt64(fields[1]);
    info.size = size.ok() ? static_cast<uint64_t>(*size) : 0;
    info.etag = std::string(fields[2]);
    out.push_back(std::move(info));
  }
  return out;
}

Result<uint64_t> SwiftClient::ObjectSize(const std::string& container,
                                         const std::string& object) {
  HttpResponse r =
      Send(Request::Head("/" + account_ + "/" + container + "/" + object));
  if (r.status == 404) return Status::NotFound("no object " + object);
  if (!r.ok()) return Status::Internal("object HEAD -> " +
                                       std::to_string(r.status));
  auto len = r.headers.Get(kContentLengthHeader);
  if (!len) return Status::Internal("missing Content-Length");
  SCOOP_ASSIGN_OR_RETURN(int64_t size, ParseInt64(*len));
  return static_cast<uint64_t>(size);
}

}  // namespace scoop
