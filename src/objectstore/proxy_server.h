#ifndef SCOOP_OBJECTSTORE_PROXY_SERVER_H_
#define SCOOP_OBJECTSTORE_PROXY_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "objectstore/container_registry.h"
#include "objectstore/http.h"
#include "objectstore/middleware.h"
#include "objectstore/ring.h"

namespace scoop {

// Routes a backend request to the object server hosting `device_id`; wired
// up by the cluster so proxies don't hold direct server references.
using BackendFn =
    std::function<HttpResponse(int device_id, Request& request)>;

// A Swift proxy server: authenticates (via its middleware pipeline),
// resolves the ring, and fans object operations out to the replica
// object servers. Writes require a majority quorum; reads fall through
// replicas in primary order so a single failed device is invisible.
class ProxyServer {
 public:
  ProxyServer(int proxy_id, const Ring* ring,
              std::shared_ptr<ContainerRegistry> registry, BackendFn backend,
              MetricRegistry* metrics);

  int proxy_id() const { return proxy_id_; }
  Pipeline& pipeline() { return *pipeline_; }

  // Full request entry (runs the middleware pipeline, then the app).
  HttpResponse Handle(Request& request);

 private:
  HttpResponse App(Request& request);
  HttpResponse HandleAccount(Request& request, const ObjectPath& path);
  HttpResponse HandleContainer(Request& request, const ObjectPath& path);
  HttpResponse HandleObject(Request& request, const ObjectPath& path);

  // Sends `request` to the replica device, tagging backend headers.
  HttpResponse SendToDevice(int device_id, Request& request);

  const int proxy_id_;
  const Ring* ring_;
  std::shared_ptr<ContainerRegistry> registry_;
  BackendFn backend_;
  MetricRegistry* metrics_;
  std::unique_ptr<Pipeline> pipeline_;
  std::atomic<uint64_t> timestamp_seq_{1};
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_PROXY_SERVER_H_
