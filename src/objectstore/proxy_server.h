// The proxy server: Swift's client-facing tier. Authenticates, resolves
// the ring, writes to a quorum of replicas, and reads with the
// self-healing ladder of DESIGN.md §3e — replica failover with capped
// backoff, mid-stream resume at the delivered offset, read-repair
// enqueueing. Each replica attempt is a traced "proxy.attempt" span and
// the handler feeds proxy.get_us/put_us (DESIGN.md §3f, METRICS.md).
#ifndef SCOOP_OBJECTSTORE_PROXY_SERVER_H_
#define SCOOP_OBJECTSTORE_PROXY_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "objectstore/container_registry.h"
#include "objectstore/http.h"
#include "objectstore/middleware.h"
#include "objectstore/replicator.h"
#include "objectstore/ring.h"

namespace scoop {

// Routes a backend request to the object server hosting `device_id`; wired
// up by the cluster so proxies don't hold direct server references.
using BackendFn =
    std::function<HttpResponse(int device_id, Request& request)>;

// How a proxy retries object reads across the replica set. Reads sweep
// the replicas in primary order up to `read_sweeps` times; every attempt
// after the first backs off exponentially (capped, with seeded jitter so
// retry storms decorrelate deterministically). An attempt that takes
// longer than `attempt_deadline_us`, or a single streamed Read slower
// than `read_deadline_us`, counts as a failure and triggers failover —
// the slow-replica half of the fault model (0 disables either deadline).
struct ProxyRetryPolicy {
  int read_sweeps = 2;
  int64_t backoff_base_us = 100;
  int64_t backoff_max_us = 2000;
  int64_t attempt_deadline_us = 1'000'000;
  int64_t read_deadline_us = 1'000'000;
};

// A Swift proxy server: authenticates (via its middleware pipeline),
// resolves the ring, and fans object operations out to the replica
// object servers. Writes require a majority quorum; reads fail over
// across replicas — at response level and mid-stream — so a single
// failed, slow, or corrupt device is invisible to the client.
class ProxyServer {
 public:
  // `repair_queue` (optional) receives the paths of objects that needed a
  // failover or missed a write, for targeted read-repair.
  ProxyServer(int proxy_id, const Ring* ring,
              std::shared_ptr<ContainerRegistry> registry, BackendFn backend,
              MetricRegistry* metrics, ProxyRetryPolicy policy = {},
              ReadRepairQueue* repair_queue = nullptr);

  int proxy_id() const { return proxy_id_; }
  Pipeline& pipeline() { return *pipeline_; }
  const ProxyRetryPolicy& retry_policy() const { return policy_; }

  // Swaps how this proxy reaches object servers (e.g. the TCP fabric
  // replacing the in-process call). Not thread-safe against concurrent
  // Handle() calls — rewire before serving traffic.
  void set_backend(BackendFn backend) { backend_ = std::move(backend); }

  // Full request entry (runs the middleware pipeline, then the app).
  HttpResponse Handle(Request& request);

  // Requests currently inside Handle(). The cluster LB reads this for
  // two-choice load balancing; storlet queueing makes proxies unevenly
  // busy, so round-robin alone piles light tenants behind heavy ones.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  friend class FailoverByteStream;

  HttpResponse App(Request& request);
  HttpResponse HandleAccount(Request& request, const ObjectPath& path);
  HttpResponse HandleContainer(Request& request, const ObjectPath& path);
  HttpResponse HandleObject(Request& request, const ObjectPath& path);
  // The read side of HandleObject: replica failover loop plus mid-stream
  // resume wiring.
  HttpResponse ObjectRead(Request& request, const std::vector<int>& replicas);

  // Sends `request` to the replica device, tagging backend headers. An
  // attempt slower than the policy's attempt deadline comes back as 504.
  HttpResponse SendToDevice(int device_id, Request& request);

  // Capped exponential backoff before retry `attempt` (1-based), with
  // jitter drawn from `rng`. `floor_us` is the minimum wait regardless of
  // the exponential schedule — the Retry-After hint from a shedding
  // replica (0 = no floor).
  void Backoff(int attempt, Rng* rng, int64_t floor_us = 0) const;

  void CountRetry();
  void CountFailover(const std::string& path);

  const int proxy_id_;
  const Ring* ring_;
  std::shared_ptr<ContainerRegistry> registry_;
  BackendFn backend_;
  MetricRegistry* metrics_;
  const ProxyRetryPolicy policy_;
  ReadRepairQueue* repair_queue_;
  Counter* retries_counter_ = nullptr;    // "proxy.retries"
  Counter* failovers_counter_ = nullptr;  // "proxy.failovers"
  std::unique_ptr<Pipeline> pipeline_;
  std::atomic<uint64_t> timestamp_seq_{1};
  // Gauge of concurrent Handle() calls; see inflight().
  mutable std::atomic<int64_t> inflight_{0};
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_PROXY_SERVER_H_
