#include "objectstore/container_registry.h"

#include "common/strings.h"

namespace scoop {

Status ContainerRegistry::CreateAccount(const std::string& account) {
  MutexLock lock(mu_);
  accounts_[account];  // idempotent
  return Status::OK();
}

bool ContainerRegistry::AccountExists(const std::string& account) const {
  MutexLock lock(mu_);
  return accounts_.count(account) > 0;
}

Status ContainerRegistry::CreateContainer(const std::string& account,
                                          const std::string& container) {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  it->second[container];  // idempotent, like Swift container PUT
  return Status::OK();
}

Status ContainerRegistry::DeleteContainer(const std::string& account,
                                          const std::string& container) {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  auto cit = it->second.find(container);
  if (cit == it->second.end()) {
    return Status::NotFound("no container " + container);
  }
  if (!cit->second.empty()) {
    return Status::FailedPrecondition("container not empty: " + container);
  }
  it->second.erase(cit);
  return Status::OK();
}

bool ContainerRegistry::ContainerExists(const std::string& account,
                                        const std::string& container) const {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return false;
  return it->second.count(container) > 0;
}

Result<std::vector<std::string>> ContainerRegistry::ListContainers(
    const std::string& account) const {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  std::vector<std::string> out;
  out.reserve(it->second.size());
  for (const auto& [name, objects] : it->second) out.push_back(name);
  return out;
}

Status ContainerRegistry::RecordObject(const std::string& account,
                                       const std::string& container,
                                       const ObjectInfo& info) {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  auto cit = it->second.find(container);
  if (cit == it->second.end()) {
    return Status::NotFound("no container " + container);
  }
  cit->second[info.name] = info;
  return Status::OK();
}

Status ContainerRegistry::RemoveObject(const std::string& account,
                                       const std::string& container,
                                       const std::string& object) {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  auto cit = it->second.find(container);
  if (cit == it->second.end()) {
    return Status::NotFound("no container " + container);
  }
  cit->second.erase(object);
  return Status::OK();
}

Result<ObjectInfo> ContainerRegistry::GetObjectInfo(
    const std::string& account, const std::string& container,
    const std::string& object) const {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  auto cit = it->second.find(container);
  if (cit == it->second.end()) {
    return Status::NotFound("no container " + container);
  }
  auto oit = cit->second.find(object);
  if (oit == cit->second.end()) {
    return Status::NotFound("no object " + object);
  }
  return oit->second;
}

Result<std::vector<ObjectInfo>> ContainerRegistry::ListObjects(
    const std::string& account, const std::string& container,
    const std::string& prefix) const {
  MutexLock lock(mu_);
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return Status::NotFound("no account " + account);
  auto cit = it->second.find(container);
  if (cit == it->second.end()) {
    return Status::NotFound("no container " + container);
  }
  std::vector<ObjectInfo> out;
  for (const auto& [name, info] : cit->second) {
    if (!prefix.empty() && !StartsWith(name, prefix)) continue;
    out.push_back(info);
  }
  return out;
}

}  // namespace scoop
