// StorageDevice: one disk of one storage node, holding replica objects
// with timestamps and per-chunk checksums. Every IO passes the
// device.read/write/delete failpoints, which is where the chaos suite
// injects disk faults. Locking per DESIGN.md §3d (rank
// lockrank::kDevice, leaf — the replicator never nests two devices).
#ifndef SCOOP_OBJECTSTORE_DEVICE_H_
#define SCOOP_OBJECTSTORE_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "objectstore/http.h"

namespace scoop {

// Granularity of the at-rest integrity hashes: one Fnv1a64 per aligned
// 64 KiB slice of the payload. Matches kDefaultStreamChunk so a streaming
// GET can verify each chunk as it leaves the device — a corrupt chunk is
// detected *before* delivery, early enough for the proxy to fail over to
// another replica instead of handing the client bad bytes.
inline constexpr size_t kIntegrityChunkSize = 64 * 1024;

// Per-chunk Fnv1a64 hashes of `data` at kIntegrityChunkSize granularity
// (empty payload -> no hashes).
std::vector<uint64_t> ComputeChunkHashes(std::string_view data);

// An object replica at rest on a device: payload plus user/system metadata.
struct StoredObject {
  std::string data;
  Headers metadata;   // user metadata (X-Object-Meta-*) and content type
  std::string etag;   // content hash, Swift's ETag
  uint64_t timestamp = 0;  // last-write-wins ordering
  // Integrity hashes (see ComputeChunkHashes); empty means "not computed"
  // and disables per-chunk verification for this copy.
  std::vector<uint64_t> chunk_hashes;
};

// One disk of a storage node. Thread-safe in-memory object map with the
// small mutation surface the object server needs. A device can be "failed"
// to exercise replica-repair paths.
//
// Locking contract: `mu_` (rank lockrank::kDevice) guards the object map
// and the failed flag; every public method takes it for the duration of
// the call. It is a leaf lock — streaming GETs share the immutable object
// out and read it with no lock held, and the replicator copies between
// devices with sequential (never nested) per-device critical sections.
class Device {
 public:
  explicit Device(int id) : id_(id), key_("d" + std::to_string(id)) {}

  int id() const { return id_; }
  // Stable key naming this device at failpoint sites ("d<id>"), so a test
  // can scope a fault to one replica of an object.
  const std::string& failpoint_key() const { return key_; }

  Status Put(const std::string& path, StoredObject object);
  Result<StoredObject> Get(const std::string& path) const;
  // Zero-copy read: shares the immutable at-rest object so a GET can be
  // served as a chunk stream without duplicating the payload. The object
  // stays valid even if overwritten or deleted while a reader holds it
  // (readers see the version that was current when they started).
  Result<std::shared_ptr<const StoredObject>> GetShared(
      const std::string& path) const;
  Status Delete(const std::string& path);
  bool Exists(const std::string& path) const;

  // All object paths currently stored, sorted. Used by the replicator.
  std::vector<std::string> ListPaths() const;

  uint64_t TotalBytes() const;
  size_t ObjectCount() const;

  // Simulated device failure: all operations return IOError until repaired.
  void Fail() { SetFailed(true); }
  void Repair() { SetFailed(false); }
  bool failed() const;

  // Drops every object (used with Fail/Repair to model disk replacement).
  void Wipe();

 private:
  void SetFailed(bool failed);

  const int id_;
  const std::string key_;
  mutable Mutex mu_{"device", lockrank::kDevice};
  bool failed_ GUARDED_BY(mu_) = false;
  // Objects are immutable once stored (PUT replaces the pointer), so GETs
  // can share them out without holding the device lock while streaming.
  std::map<std::string, std::shared_ptr<const StoredObject>> objects_
      GUARDED_BY(mu_);
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_DEVICE_H_
