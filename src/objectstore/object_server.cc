#include "objectstore/object_server.h"

#include "common/hash.h"
#include "common/strings.h"

namespace scoop {

ObjectServer::ObjectServer(int node_id, const std::vector<int>& device_ids,
                           MetricRegistry* metrics)
    : node_id_(node_id), metrics_(metrics) {
  for (int id : device_ids) {
    auto device = std::make_shared<Device>(id);
    devices_by_id_[id] = device.get();
    devices_.push_back(std::move(device));
  }
  pipeline_ = std::make_unique<Pipeline>(
      [this](Request& request) { return App(request); });
}

HttpResponse ObjectServer::Handle(Request& request) {
  return pipeline_->Handle(request);
}

Device* ObjectServer::GetDevice(int device_id) {
  auto it = devices_by_id_.find(device_id);
  return it == devices_by_id_.end() ? nullptr : it->second;
}

std::string ObjectServer::ComputeEtag(const std::string& data) {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fnv1a64(data)));
}

HttpResponse ObjectServer::App(Request& request) {
  auto path_result = ObjectPath::Parse(request.path);
  if (!path_result.ok() || !path_result->IsObject()) {
    return HttpResponse::Make(400, "object server requires an object path");
  }
  auto device_header = request.headers.Get(kBackendDeviceHeader);
  if (!device_header) {
    return HttpResponse::Make(400, "missing X-Backend-Device");
  }
  auto device_id = ParseInt64(*device_header);
  if (!device_id.ok()) {
    return HttpResponse::Make(400, "bad X-Backend-Device");
  }
  Device* device = GetDevice(static_cast<int>(*device_id));
  if (device == nullptr) {
    return HttpResponse::Make(400, "device not on this node");
  }
  switch (request.method) {
    case HttpMethod::kGet:
      return DoGet(request, *device, *path_result);
    case HttpMethod::kPut:
      return DoPut(request, *device, *path_result);
    case HttpMethod::kDelete:
      return DoDelete(*device, *path_result);
    case HttpMethod::kHead:
      return DoHead(*device, *path_result);
    case HttpMethod::kPost:
      return HttpResponse::Make(405, "POST not supported on object servers");
  }
  return HttpResponse::Make(500, "unreachable");
}

HttpResponse ObjectServer::DoGet(Request& request, Device& device,
                                 const ObjectPath& path) {
  auto stored = device.GetShared(path.ToString());
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) return HttpResponse::Make(404);
    return HttpResponse::Make(503, stored.status().ToString());
  }
  const StoredObject& object = **stored;
  HttpResponse response;
  response.headers = object.metadata;
  response.headers.Set(kEtagHeader, object.etag);
  std::string_view window = object.data;
  auto range_header = request.headers.Get(kRangeHeader);
  if (range_header) {
    auto range = ByteRange::Parse(*range_header, object.data.size());
    if (!range.ok()) {
      return HttpResponse::Make(416, range.status().ToString());
    }
    response.status = 206;
    window = window.substr(range->first, range->length());
    response.headers.Set(
        "Content-Range",
        StrFormat("bytes %llu-%llu/%llu",
                  static_cast<unsigned long long>(range->first),
                  static_cast<unsigned long long>(range->last),
                  static_cast<unsigned long long>(object.data.size())));
  } else {
    response.status = 200;
  }
  response.headers.Set(kContentLengthHeader, std::to_string(window.size()));
  // Serve the (possibly range-sliced) payload as a chunk producer over the
  // shared at-rest object: no copy is made here, and consumers pull at
  // most chunk_size_ bytes at a time.
  response.SetBodyStream(std::make_shared<SharedBufferByteStream>(
      std::move(stored).value(), window, chunk_size_));
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("node_%d.bytes_read", node_id_))
        ->Add(static_cast<int64_t>(window.size()));
    metrics_->GetCounter(StrFormat("node_%d.get_requests", node_id_))
        ->Increment();
  }
  return response;
}

HttpResponse ObjectServer::DoPut(Request& request, Device& device,
                                 const ObjectPath& path) {
  StoredObject object;
  object.data = request.body;
  object.etag = ComputeEtag(object.data);
  auto ts = request.headers.Get(kTimestampHeader);
  if (ts) {
    auto parsed = ParseInt64(*ts);
    if (parsed.ok()) object.timestamp = static_cast<uint64_t>(*parsed);
  }
  // Preserve user metadata (X-Object-Meta-*) and content type.
  for (const auto& [name, value] : request.headers) {
    if (StartsWith(ToLower(name), "x-object-meta-") ||
        ToLower(name) == "content-type") {
      object.metadata.Set(name, value);
    }
  }
  size_t bytes = object.data.size();
  std::string etag = object.etag;
  Status s = device.Put(path.ToString(), std::move(object));
  if (!s.ok()) return HttpResponse::Make(503, s.ToString());
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("node_%d.bytes_written", node_id_))
        ->Add(static_cast<int64_t>(bytes));
  }
  HttpResponse response = HttpResponse::Make(201);
  response.headers.Set(kEtagHeader, etag);
  return response;
}

HttpResponse ObjectServer::DoDelete(Device& device, const ObjectPath& path) {
  Status s = device.Delete(path.ToString());
  if (s.IsNotFound()) return HttpResponse::Make(404);
  if (!s.ok()) return HttpResponse::Make(503, s.ToString());
  return HttpResponse::Make(204);
}

HttpResponse ObjectServer::DoHead(Device& device, const ObjectPath& path) {
  auto stored = device.GetShared(path.ToString());
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) return HttpResponse::Make(404);
    return HttpResponse::Make(503, stored.status().ToString());
  }
  HttpResponse response = HttpResponse::Make(200);
  response.headers = (*stored)->metadata;
  response.headers.Set(kEtagHeader, (*stored)->etag);
  response.headers.Set(kContentLengthHeader,
                       std::to_string((*stored)->data.size()));
  return response;
}

}  // namespace scoop
