#include "objectstore/object_server.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/strings.h"

namespace scoop {

namespace {

// The device-side GET data plane. Instead of sharing the at-rest buffer out
// directly, each aligned kIntegrityChunkSize slice is materialized into a
// private copy, passed through the "object.read.chunk" failpoint (which may
// corrupt or truncate the copy — never the at-rest object), and verified
// against the chunk hash recorded at PUT. A corrupt chunk therefore turns
// into an IOError *before* its bytes are delivered, early enough for the
// proxy to resume the stream from another replica; memory stays bounded at
// one chunk regardless of object size.
class ObjectChunkStream : public ByteStream {
 public:
  ObjectChunkStream(std::shared_ptr<const StoredObject> object,
                    size_t win_start, size_t win_len, size_t chunk_size,
                    std::string device_key)
      : object_(std::move(object)),
        win_start_(win_start),
        win_len_(win_len),
        chunk_size_(chunk_size == 0 ? 1 : chunk_size),
        device_key_(std::move(device_key)) {}

  Result<size_t> Read(char* buf, size_t n) override {
    while (buf_pos_ >= buf_.size()) {
      if (!sticky_error_.ok()) return sticky_error_;
      if (pos_ >= win_len_) return static_cast<size_t>(0);
      SCOOP_RETURN_IF_ERROR(Refill());
    }
    size_t count = std::min({n, chunk_size_, buf_.size() - buf_pos_});
    std::memcpy(buf, buf_.data() + buf_pos_, count);
    buf_pos_ += count;
    pos_ += count;
    return count;
  }

  std::optional<uint64_t> SizeHint() const override {
    return win_len_ - pos_;
  }

 private:
  Status Refill() {
    const std::string& data = object_->data;
    size_t abs = win_start_ + pos_;
    size_t chunk_idx = abs / kIntegrityChunkSize;
    size_t chunk_begin = chunk_idx * kIntegrityChunkSize;
    size_t chunk_len =
        std::min(kIntegrityChunkSize, data.size() - chunk_begin);
    buf_.assign(data, chunk_begin, chunk_len);
    bool dropped = false;
    if (FailpointsArmed()) {
      size_t keep = buf_.size();
      Status err;
      DataFaultKind kind = Failpoints::Global().CheckData(
          "object.read.chunk", device_key_, buf_.data(), buf_.size(), &keep,
          &err);
      switch (kind) {
        case DataFaultKind::kNone:
        case DataFaultKind::kCorrupted:
          break;  // corruption is caught by the hash check below
        case DataFaultKind::kError:
          sticky_error_ = err;
          return err;
        case DataFaultKind::kDrop:
          buf_.resize(std::min(keep, buf_.size()));
          sticky_error_ =
              err.ok() ? Status::IOError("stream dropped mid-chunk") : err;
          dropped = true;
          break;
      }
    }
    if (!dropped && chunk_idx < object_->chunk_hashes.size() &&
        Fnv1a64(buf_) != object_->chunk_hashes[chunk_idx]) {
      sticky_error_ = Status::IOError(
          "chunk integrity check failed at offset " +
          std::to_string(chunk_begin));
      return sticky_error_;
    }
    // Clip the aligned chunk to the portion of the request window it
    // serves (range GETs start mid-chunk).
    size_t begin_in_chunk = abs - chunk_begin;
    if (begin_in_chunk >= buf_.size()) {
      buf_.clear();
    } else {
      buf_ = buf_.substr(
          begin_in_chunk,
          std::min(buf_.size() - begin_in_chunk, win_len_ - pos_));
    }
    buf_pos_ = 0;
    if (buf_.empty() && !sticky_error_.ok()) return sticky_error_;
    return Status::OK();
  }

  std::shared_ptr<const StoredObject> object_;
  const size_t win_start_;
  const size_t win_len_;
  const size_t chunk_size_;
  const std::string device_key_;
  std::string buf_;
  size_t buf_pos_ = 0;
  size_t pos_ = 0;  // delivered bytes within the window
  Status sticky_error_ = Status::OK();
};

}  // namespace

ObjectServer::ObjectServer(int node_id, const std::vector<int>& device_ids,
                           MetricRegistry* metrics)
    : node_id_(node_id), metrics_(metrics) {
  for (int id : device_ids) {
    auto device = std::make_shared<Device>(id);
    devices_by_id_[id] = device.get();
    devices_.push_back(std::move(device));
  }
  pipeline_ = std::make_unique<Pipeline>(
      [this](Request& request) { return App(request); });
}

HttpResponse ObjectServer::Handle(Request& request) {
  // Child of the proxy's attempt span (or of whatever hop stamped the
  // headers); the storlet middleware on this node parents off our re-stamp.
  TraceSpan span("objectserver.request",
                 TraceContextFromHeaders(request.headers));
  if (span.active()) {
    span.SetTag("node", std::to_string(node_id_));
    span.SetTag("method", std::string(HttpMethodName(request.method)));
    span.SetTag("device", request.headers.GetOr(kBackendDeviceHeader, ""));
    StampTraceContext(span.context(), &request.headers);
  }
  Stopwatch watch;
  HttpResponse response = pipeline_->Handle(request);
  if (metrics_ != nullptr) {
    // Like proxy.get_us: handler latency up to the response head — a
    // streamed GET body is drained by the layer above.
    int64_t us = static_cast<int64_t>(watch.ElapsedSeconds() * 1e6);
    if (request.method == HttpMethod::kGet) {
      metrics_->GetHistogram("objectserver.get_us")->Record(us);
    } else if (request.method == HttpMethod::kPut) {
      metrics_->GetHistogram("objectserver.put_us")->Record(us);
    }
  }
  if (span.active()) span.SetTag("status", std::to_string(response.status));
  return response;
}

Device* ObjectServer::GetDevice(int device_id) {
  auto it = devices_by_id_.find(device_id);
  return it == devices_by_id_.end() ? nullptr : it->second;
}

std::string ObjectServer::ComputeEtag(const std::string& data) {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fnv1a64(data)));
}

HttpResponse ObjectServer::App(Request& request) {
  auto path_result = ObjectPath::Parse(request.path);
  if (!path_result.ok() || !path_result->IsObject()) {
    return HttpResponse::Make(400, "object server requires an object path");
  }
  auto device_header = request.headers.Get(kBackendDeviceHeader);
  if (!device_header) {
    return HttpResponse::Make(400, "missing X-Backend-Device");
  }
  auto device_id = ParseInt64(*device_header);
  if (!device_id.ok()) {
    return HttpResponse::Make(400, "bad X-Backend-Device");
  }
  Device* device = GetDevice(static_cast<int>(*device_id));
  if (device == nullptr) {
    return HttpResponse::Make(400, "device not on this node");
  }
  switch (request.method) {
    case HttpMethod::kGet:
      return DoGet(request, *device, *path_result);
    case HttpMethod::kPut:
      return DoPut(request, *device, *path_result);
    case HttpMethod::kDelete:
      return DoDelete(*device, *path_result);
    case HttpMethod::kHead:
      return DoHead(*device, *path_result);
    case HttpMethod::kPost:
      return HttpResponse::Make(405, "POST not supported on object servers");
  }
  return HttpResponse::Make(500, "unreachable");
}

HttpResponse ObjectServer::DoGet(Request& request, Device& device,
                                 const ObjectPath& path) {
  auto stored = device.GetShared(path.ToString());
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) return HttpResponse::Make(404);
    return HttpResponse::Make(503, stored.status().ToString());
  }
  const StoredObject& object = **stored;
  HttpResponse response;
  response.headers = object.metadata;
  response.headers.Set(kEtagHeader, object.etag);
  std::string_view window = object.data;
  auto range_header = request.headers.Get(kRangeHeader);
  if (range_header) {
    auto range = ByteRange::Parse(*range_header, object.data.size());
    if (!range.ok()) {
      return HttpResponse::Make(416, range.status().ToString());
    }
    response.status = 206;
    window = window.substr(range->first, range->length());
    response.headers.Set(
        "Content-Range",
        StrFormat("bytes %llu-%llu/%llu",
                  static_cast<unsigned long long>(range->first),
                  static_cast<unsigned long long>(range->last),
                  static_cast<unsigned long long>(object.data.size())));
  } else {
    response.status = 200;
  }
  response.headers.Set(kContentLengthHeader, std::to_string(window.size()));
  // Serve the (possibly range-sliced) payload as a verifying chunk producer
  // over the shared at-rest object: one aligned chunk is materialized and
  // integrity-checked at a time, and consumers pull at most chunk_size_
  // bytes per read.
  size_t win_start = static_cast<size_t>(window.data() - object.data.data());
  response.SetBodyStream(std::make_shared<ObjectChunkStream>(
      std::move(stored).value(), win_start, window.size(), chunk_size_,
      device.failpoint_key()));
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("node_%d.bytes_read", node_id_))
        ->Add(static_cast<int64_t>(window.size()));
    metrics_->GetCounter(StrFormat("node_%d.get_requests", node_id_))
        ->Increment();
  }
  return response;
}

HttpResponse ObjectServer::DoPut(Request& request, Device& device,
                                 const ObjectPath& path) {
  StoredObject object;
  object.data = request.body;
  object.etag = ComputeEtag(object.data);
  object.chunk_hashes = ComputeChunkHashes(object.data);
  auto ts = request.headers.Get(kTimestampHeader);
  if (ts) {
    auto parsed = ParseInt64(*ts);
    if (parsed.ok()) object.timestamp = static_cast<uint64_t>(*parsed);
  }
  // Preserve user metadata (X-Object-Meta-*) and content type.
  for (const auto& [name, value] : request.headers) {
    if (StartsWith(ToLower(name), "x-object-meta-") ||
        ToLower(name) == "content-type") {
      object.metadata.Set(name, value);
    }
  }
  size_t bytes = object.data.size();
  std::string etag = object.etag;
  Status s = device.Put(path.ToString(), std::move(object));
  if (!s.ok()) return HttpResponse::Make(503, s.ToString());
  if (metrics_ != nullptr) {
    metrics_->GetCounter(StrFormat("node_%d.bytes_written", node_id_))
        ->Add(static_cast<int64_t>(bytes));
  }
  HttpResponse response = HttpResponse::Make(201);
  response.headers.Set(kEtagHeader, etag);
  return response;
}

HttpResponse ObjectServer::DoDelete(Device& device, const ObjectPath& path) {
  Status s = device.Delete(path.ToString());
  if (s.IsNotFound()) return HttpResponse::Make(404);
  if (!s.ok()) return HttpResponse::Make(503, s.ToString());
  return HttpResponse::Make(204);
}

HttpResponse ObjectServer::DoHead(Device& device, const ObjectPath& path) {
  auto stored = device.GetShared(path.ToString());
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) return HttpResponse::Make(404);
    return HttpResponse::Make(503, stored.status().ToString());
  }
  HttpResponse response = HttpResponse::Make(200);
  response.headers = (*stored)->metadata;
  response.headers.Set(kEtagHeader, (*stored)->etag);
  response.headers.Set(kContentLengthHeader,
                       std::to_string((*stored)->data.size()));
  return response;
}

}  // namespace scoop
