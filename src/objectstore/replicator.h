// Replica repair: the full-sweep replicator (scan every device, push the
// newest copy wherever a replica is missing or stale) and the
// ReadRepairQueue that heals paths a degraded GET actually observed,
// ahead of the next sweep (DESIGN.md §3e rung 3). Sweeps are traced as
// "replicator.run" spans and timed into replicator.run_us. Queue locking
// per DESIGN.md §3d (rank lockrank::kRepairQueue).
#ifndef SCOOP_OBJECTSTORE_REPLICATOR_H_
#define SCOOP_OBJECTSTORE_REPLICATOR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"
#include "objectstore/device.h"
#include "objectstore/ring.h"

namespace scoop {

// Paths whose replica sets are known-degraded: a proxy enqueues an object
// here whenever a read had to fail over past a broken replica or a write
// landed on fewer than all replicas. Draining the queue through
// Replicator::RepairPaths is *read-repair* — the damage a client already
// tripped over is healed without waiting for the next full scan.
//
// Locking contract: `mu_` (rank lockrank::kRepairQueue) guards the path
// set; it is held only for set mutation, never across device access.
class ReadRepairQueue {
 public:
  void Enqueue(std::string path) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    paths_.insert(std::move(path));
  }
  // Removes and returns all queued paths.
  std::vector<std::string> Drain() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::vector<std::string> out(paths_.begin(), paths_.end());
    paths_.clear();
    return out;
  }
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return paths_.size();
  }

 private:
  mutable Mutex mu_{"read_repair_queue", lockrank::kRepairQueue};
  std::set<std::string> paths_ GUARDED_BY(mu_);
};

// Background replica repair, the role of Swift's object-replicator daemon.
// Scans every device, recomputes each object's replica set from the ring,
// and copies the newest replica onto any assigned device that is missing
// it or holds a stale copy.
class Replicator {
 public:
  // `devices_by_id[i]` must be the device with ring id `i`. With a
  // non-null `metrics`, each pass records its wall time into the
  // "replicator.run_us" histogram (see METRICS.md).
  Replicator(const Ring* ring, std::vector<Device*> devices_by_id,
             MetricRegistry* metrics = nullptr);

  struct Report {
    int objects_scanned = 0;
    int replicas_repaired = 0;
    int replicas_unreachable = 0;
    int handoffs_removed = 0;
  };

  // One full replication pass. Safe to run repeatedly; idempotent once
  // all replicas converge. With `remove_handoffs`, copies living on
  // devices outside an object's current replica set are deleted once all
  // assigned replicas are in place — the cleanup step after a ring
  // rebalance moved assignments.
  Report RunOnce(bool remove_handoffs = false);

  // Targeted read-repair: repairs exactly `paths` (canonical
  // /account/container/object forms) instead of scanning every device.
  Report RepairPaths(const std::vector<std::string>& paths);

 private:
  void RepairOne(const std::string& path, bool remove_handoffs,
                 Report* report, const TraceContext& parent);

  const Ring* ring_;
  std::vector<Device*> devices_;
  MetricRegistry* metrics_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_REPLICATOR_H_
