#ifndef SCOOP_OBJECTSTORE_REPLICATOR_H_
#define SCOOP_OBJECTSTORE_REPLICATOR_H_

#include <memory>
#include <vector>

#include "objectstore/device.h"
#include "objectstore/ring.h"

namespace scoop {

// Background replica repair, the role of Swift's object-replicator daemon.
// Scans every device, recomputes each object's replica set from the ring,
// and copies the newest replica onto any assigned device that is missing
// it or holds a stale copy.
class Replicator {
 public:
  // `devices_by_id[i]` must be the device with ring id `i`.
  Replicator(const Ring* ring, std::vector<Device*> devices_by_id);

  struct Report {
    int objects_scanned = 0;
    int replicas_repaired = 0;
    int replicas_unreachable = 0;
    int handoffs_removed = 0;
  };

  // One full replication pass. Safe to run repeatedly; idempotent once
  // all replicas converge. With `remove_handoffs`, copies living on
  // devices outside an object's current replica set are deleted once all
  // assigned replicas are in place — the cleanup step after a ring
  // rebalance moved assignments.
  Report RunOnce(bool remove_handoffs = false);

 private:
  const Ring* ring_;
  std::vector<Device*> devices_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_REPLICATOR_H_
