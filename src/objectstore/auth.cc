#include "objectstore/auth.h"

#include "common/hash.h"
#include "common/strings.h"

namespace scoop {

Status AuthService::RegisterTenant(const std::string& tenant,
                                   const std::string& key,
                                   const std::string& account,
                                   TenantTier tier) {
  MutexLock lock(mu_);
  if (tenants_.count(tenant)) {
    return Status::AlreadyExists("tenant exists: " + tenant);
  }
  tenants_[tenant] = TenantInfo{key, account, tier};
  account_tier_[account] = tier;
  return Status::OK();
}

Result<std::string> AuthService::IssueToken(const std::string& tenant,
                                            const std::string& key) {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("unknown tenant: " + tenant);
  if (it->second.key != key) return Status::Unauthorized("bad credentials");
  std::string token = StrFormat(
      "tk%016llx", static_cast<unsigned long long>(
                       Mix64(Fnv1a64(tenant) + ++token_seq_)));
  tokens_[token] = it->second.account;
  return token;
}

Result<std::string> AuthService::ValidateToken(const std::string& token) const {
  MutexLock lock(mu_);
  auto it = tokens_.find(token);
  if (it == tokens_.end()) return Status::Unauthorized("invalid token");
  return it->second;
}

std::string_view TenantTierName(TenantTier tier) {
  return tier == TenantTier::kBronze ? "bronze" : "gold";
}

TenantTier ParseTenantTier(std::string_view name) {
  return name == "bronze" ? TenantTier::kBronze : TenantTier::kGold;
}

Result<TenantTier> AuthService::GetTier(const std::string& account) const {
  MutexLock lock(mu_);
  auto it = account_tier_.find(account);
  if (it == account_tier_.end()) {
    return Status::NotFound("unknown account: " + account);
  }
  return it->second;
}

Status AuthService::SetTier(const std::string& account, TenantTier tier) {
  MutexLock lock(mu_);
  auto it = account_tier_.find(account);
  if (it == account_tier_.end()) {
    return Status::NotFound("unknown account: " + account);
  }
  it->second = tier;
  return Status::OK();
}

HttpResponse AuthMiddleware::Process(Request& request,
                                     const HttpHandler& next) {
  auto token = request.headers.Get(kAuthTokenHeader);
  if (!token) return HttpResponse::Make(401, "missing X-Auth-Token");
  auto account = auth_->ValidateToken(*token);
  if (!account.ok()) return HttpResponse::Make(401, account.status().ToString());
  auto path = ObjectPath::Parse(request.path);
  if (!path.ok()) return HttpResponse::Make(400, path.status().ToString());
  if (path->account != *account) {
    return HttpResponse::Make(403, "token not valid for account " +
                                       path->account);
  }
  // Stamp the authenticated tier, overwriting anything the client sent —
  // the tier is an authorization attribute, not a client claim.
  TenantTier tier = TenantTier::kGold;
  if (auto looked_up = auth_->GetTier(*account); looked_up.ok()) {
    tier = *looked_up;
  }
  request.headers.Set(kTenantTierHeader, std::string(TenantTierName(tier)));
  return next(request);
}

}  // namespace scoop
