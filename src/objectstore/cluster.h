// The assembled Swift-like cluster: a load balancer fanning out to proxy
// servers, which dispatch over the ring to object servers, plus the
// shared services (auth, container registry, policy store, metric
// registry) and the SwiftClient programs talk to. This is the "object
// store" box of the paper's Fig. 3; scale-out (AddStorageNode) and the
// replication entry points live here too.
#ifndef SCOOP_OBJECTSTORE_CLUSTER_H_
#define SCOOP_OBJECTSTORE_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "objectstore/auth.h"
#include "objectstore/container_registry.h"
#include "objectstore/http.h"
#include "objectstore/object_server.h"
#include "objectstore/proxy_server.h"
#include "objectstore/replicator.h"
#include "objectstore/ring.h"

namespace scoop {

// Shape of a Swift deployment. Defaults are a laptop-scale version of the
// paper's OSIC testbed (6 proxies, 29 object nodes with 10 disks each).
struct SwiftConfig {
  int num_proxies = 2;
  int num_storage_nodes = 4;
  int disks_per_node = 2;
  int num_zones = 2;       // nodes are assigned to zones round-robin
  int part_power = 8;      // 2^part_power ring partitions
  int replica_count = 3;
  // Read failover / retry behavior of every proxy (see proxy_server.h).
  ProxyRetryPolicy retry;
};

// An in-process OpenStack-Swift-like cluster: a load-balanced pool of
// proxy servers in front of object servers placed by a consistent-hash
// ring, plus the identity service and container metadata layer. All
// requests flow through proxy and object-server middleware pipelines, so
// the Storlet engine can be installed exactly where the paper installs it.
class SwiftCluster {
 public:
  static Result<std::unique_ptr<SwiftCluster>> Create(
      const SwiftConfig& config);
  ~SwiftCluster();

  SwiftCluster(const SwiftCluster&) = delete;
  SwiftCluster& operator=(const SwiftCluster&) = delete;

  const SwiftConfig& config() const { return config_; }
  const Ring& ring() const { return ring_; }
  AuthService& auth() { return *auth_; }
  std::shared_ptr<AuthService> auth_ptr() { return auth_; }
  ContainerRegistry& registry() { return *registry_; }
  MetricRegistry& metrics() { return metrics_; }

  std::vector<std::unique_ptr<ProxyServer>>& proxies() { return proxies_; }
  std::vector<std::unique_ptr<ObjectServer>>& object_servers() {
    return object_servers_;
  }

  // Client entry point: the load balancer hands the request to a proxy
  // (round-robin, like the paper's HAProxy + VRRP front end).
  HttpResponse Handle(Request request);

  // The in-process device-to-node routing BackendFn the cluster wires
  // into its proxies at Create time. Exposed so a transport fabric
  // (scoop/tcp_fabric) can restore it after swapping the proxies over to
  // socket-backed backends.
  BackendFn InProcessBackend();

  // Runs one replica-repair pass over the whole cluster. With
  // `remove_handoffs`, copies outside an object's replica set are removed
  // once the set is fully populated (post-rebalance cleanup).
  Replicator::Report RunReplication(bool remove_handoffs = false);

  // Targeted read-repair: heals exactly the paths proxies flagged as
  // degraded (failed-over reads, partial writes) since the last drain.
  Replicator::Report RunReadRepair();

  // Paths awaiting read-repair (proxies feed this; see ReadRepairQueue).
  ReadRepairQueue& read_repair_queue() { return repair_queue_; }

  // Scale-out: adds a storage node with `disks` devices, incrementally
  // rebalances the ring onto it, and returns the new node's ObjectServer
  // (so callers can extend its middleware pipeline). Data migrates on the
  // next RunReplication pass — exactly Swift's add-device + rebalance +
  // replicate workflow.
  Result<ObjectServer*> AddStorageNode(int disks);

  // All devices indexed by ring device id.
  std::vector<Device*> DevicesById();

 private:
  explicit SwiftCluster(const SwiftConfig& config) : config_(config) {}

  SwiftConfig config_;
  Ring ring_;
  MetricRegistry metrics_;
  ReadRepairQueue repair_queue_;
  // The cluster's "faults.injected" counter while registered with the
  // process-global failpoint registry (detached on destruction).
  Counter* fault_counter_ = nullptr;
  std::shared_ptr<AuthService> auth_ = std::make_shared<AuthService>();
  std::shared_ptr<ContainerRegistry> registry_ =
      std::make_shared<ContainerRegistry>();
  std::vector<std::unique_ptr<ObjectServer>> object_servers_;
  std::vector<std::unique_ptr<ProxyServer>> proxies_;
  std::vector<int> device_to_node_;  // ring device id -> storage node index
  std::atomic<uint64_t> next_proxy_{0};
};

// How a SwiftClient reaches the cluster: any callable that carries a
// request to the proxy tier and returns its response. In-process this
// wraps SwiftCluster::Handle; the TCP transport (src/net, wired up in
// the scoop layer so objectstore stays socket-free) provides the same
// shape over real connections.
using ClientTransportFn = std::function<HttpResponse(Request)>;

// Convenience client bound to one tenant's token. This is the HTTP-level
// API that Stocator, the examples, and the tests drive the store with.
class SwiftClient {
 public:
  SwiftClient(SwiftCluster* cluster, std::string account, std::string token)
      : SwiftClient(
            [cluster](Request request) {
              return cluster->Handle(std::move(request));
            },
            std::move(account), std::move(token)) {}

  // Transport-agnostic form: `transport` decides how requests travel
  // (in-process call or TCP round-trip) — the client is oblivious.
  SwiftClient(ClientTransportFn transport, std::string account,
              std::string token)
      : transport_(std::move(transport)),
        account_(std::move(account)),
        token_(std::move(token)) {}

  // Registers a tenant on `cluster`, issues a token, creates the account.
  static Result<SwiftClient> Connect(SwiftCluster* cluster,
                                     const std::string& tenant,
                                     const std::string& key,
                                     const std::string& account);

  // As Connect, but the returned client sends through `transport` (the
  // tenant is still registered on `auth` directly — token issue happens
  // out of band of the request path, as with any identity service).
  static Result<SwiftClient> ConnectVia(ClientTransportFn transport,
                                        AuthService& auth,
                                        const std::string& tenant,
                                        const std::string& key,
                                        const std::string& account);

  const std::string& account() const { return account_; }

  Status CreateContainer(const std::string& container);
  Status PutObject(const std::string& container, const std::string& object,
                   std::string data, const Headers& extra = Headers());
  Result<std::string> GetObject(const std::string& container,
                                const std::string& object,
                                const Headers& extra = Headers());
  // Byte-range GET ("Range: bytes=first-last", inclusive).
  Result<std::string> GetObjectRange(const std::string& container,
                                     const std::string& object,
                                     uint64_t first, uint64_t last,
                                     const Headers& extra = Headers());
  Status DeleteObject(const std::string& container, const std::string& object);
  Result<std::vector<ObjectInfo>> ListObjects(const std::string& container,
                                              const std::string& prefix = "");
  Result<uint64_t> ObjectSize(const std::string& container,
                              const std::string& object);

  // Raw request with the auth token attached.
  HttpResponse Send(Request request);

 private:
  ClientTransportFn transport_;
  std::string account_;
  std::string token_;
};

}  // namespace scoop

#endif  // SCOOP_OBJECTSTORE_CLUSTER_H_
