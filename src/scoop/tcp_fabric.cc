#include "scoop/tcp_fabric.h"

#include <utility>

namespace scoop {

Result<std::unique_ptr<TcpFabric>> TcpFabric::Start(ScoopCluster* cluster,
                                                    const Options& options) {
  auto fabric = std::unique_ptr<TcpFabric>(new TcpFabric());
  fabric->cluster_ = cluster;
  SwiftCluster& swift = cluster->swift();
  MetricRegistry* metrics = &swift.metrics();

  // One listener per object server; the handler is the server's full
  // pipeline (storlet middleware included), exactly as in-process.
  for (auto& server : swift.object_servers()) {
    net::TcpServerConfig config = options.server;
    config.port = 0;
    ObjectServer* raw = server.get();
    SCOOP_ASSIGN_OR_RETURN(
        auto listener,
        net::TcpServer::Start(
            config, [raw](Request& request) { return raw->Handle(request); },
            metrics));
    fabric->object_endpoints_.push_back(
        {listener->host(), listener->port()});
    fabric->object_listeners_.push_back(std::move(listener));
  }
  for (const auto& endpoint : fabric->object_endpoints_) {
    net::TcpClientConfig config = options.client;
    config.host = endpoint.host;
    config.port = endpoint.port;
    fabric->node_clients_.push_back(
        std::make_unique<net::TcpClient>(config, metrics));
  }
  fabric->device_to_node_.resize(swift.ring().devices().size());
  for (const RingDevice& d : swift.ring().devices()) {
    fabric->device_to_node_[d.id] = d.node;
  }

  // Rewire every proxy's backend over the wire. The device id still
  // rides in X-Backend-Device (set by the proxy before this runs); here
  // it only picks which node's client carries the request.
  TcpFabric* raw_fabric = fabric.get();
  BackendFn tcp_backend = [raw_fabric](int device_id,
                                       Request& request) -> HttpResponse {
    if (device_id < 0 ||
        device_id >= static_cast<int>(raw_fabric->device_to_node_.size())) {
      return HttpResponse::Make(500, "no such device");
    }
    int node = raw_fabric->device_to_node_[device_id];
    return raw_fabric->node_clients_[node]->RoundTrip(std::move(request));
  };
  for (auto& proxy : swift.proxies()) {
    proxy->set_backend(tcp_backend);
    net::TcpServerConfig config = options.server;
    config.port = 0;
    ProxyServer* raw = proxy.get();
    SCOOP_ASSIGN_OR_RETURN(
        auto listener,
        net::TcpServer::Start(
            config, [raw](Request& request) { return raw->Handle(request); },
            metrics));
    fabric->proxy_endpoints_.push_back({listener->host(), listener->port()});
    fabric->proxy_listeners_.push_back(std::move(listener));
  }
  fabric->front_ = std::make_unique<net::TcpTransport>(
      fabric->proxy_endpoints_, metrics, options.client);
  return fabric;
}

TcpFabric::~TcpFabric() {
  // Stop listeners before touching proxy backends so no handler is
  // mid-flight during the swap; proxies first (they call into nodes).
  for (auto& listener : proxy_listeners_) listener->Stop();
  for (auto& listener : object_listeners_) listener->Stop();
  if (cluster_ != nullptr) {
    BackendFn backend = cluster_->swift().InProcessBackend();
    for (auto& proxy : cluster_->swift().proxies()) {
      proxy->set_backend(backend);
    }
  }
}

HttpResponse TcpFabric::Handle(Request request) {
  return front_->RoundTrip(std::move(request));
}

Result<SwiftClient> TcpFabric::Connect(const std::string& tenant,
                                       const std::string& key,
                                       const std::string& account) {
  net::TcpTransport* front = front_.get();
  return SwiftClient::ConnectVia(
      [front](Request request) { return front->RoundTrip(std::move(request)); },
      cluster_->swift().auth(), tenant, key, account);
}

}  // namespace scoop
