// scoop_cli: a small operator client for a running scoopd deployment.
//
//   scoop_cli health  <url>
//   scoop_cli metrics <url>
//   scoop_cli qos     <url>
//   scoop_cli auth    <url> <tenant> <key>
//   scoop_cli put     <url> <tenant> <key> <container> <object> <data>
//   scoop_cli get     <url> <tenant> <key> <container> <object>
//   scoop_cli ls      <url> <tenant> <key> <container> [prefix]
//
// <url> is a transport URL, e.g. tcp://127.0.0.1:9000 (several
// comma-separated proxy endpoints round-robin). The data-path commands
// fetch a token from GET /auth/v1.0 first; the account comes back in
// X-Storage-Account. See docs/RUNBOOK.md.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "net/transport.h"
#include "objectstore/cluster.h"
#include "objectstore/http.h"

namespace scoop {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "scoop_cli: %s\n", message.c_str());
  return 1;
}

Result<std::unique_ptr<net::Transport>> MakeTransport(const std::string& url) {
  SCOOP_ASSIGN_OR_RETURN(net::ScoopUrl parsed, net::ParseScoopUrl(url));
  if (parsed.kind != net::ScoopUrl::Kind::kTcp) {
    return Status::InvalidArgument("scoop_cli needs a tcp:// url");
  }
  return std::unique_ptr<net::Transport>(
      new net::TcpTransport(parsed.endpoints));
}

// GET /auth/v1.0 -> (token, account).
Result<std::pair<std::string, std::string>> Authenticate(
    net::Transport& transport, const std::string& tenant,
    const std::string& key) {
  Request request = Request::Get("/auth/v1.0");
  request.headers.Set("X-Auth-User", tenant);
  request.headers.Set("X-Auth-Key", key);
  HttpResponse response = transport.RoundTrip(std::move(request));
  if (!response.ok()) {
    return Status::Unauthorized("auth -> " + std::to_string(response.status) +
                                " " + response.TakeBody());
  }
  auto token = response.headers.Get("X-Auth-Token");
  auto account = response.headers.Get("X-Storage-Account");
  if (!token || !account) {
    return Status::Internal("auth response missing token/account headers");
  }
  return std::make_pair(std::string(*token), std::string(*account));
}

Result<SwiftClient> MakeClient(net::Transport& transport,
                               const std::string& tenant,
                               const std::string& key) {
  SCOOP_ASSIGN_OR_RETURN(auto creds, Authenticate(transport, tenant, key));
  net::Transport* raw = &transport;
  SwiftClient client(
      [raw](Request request) { return raw->RoundTrip(std::move(request)); },
      creds.second, creds.first);
  // Account PUT is idempotent; do it on every run so a fresh proxy
  // process (accounts are in-memory) accepts container ops immediately.
  HttpResponse r = client.Send(Request::Put("/" + creds.second, ""));
  if (!r.ok()) {
    return Status::Internal("account PUT -> " + std::to_string(r.status));
  }
  return client;
}

int Run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: scoop_cli <health|metrics|qos|auth|put|get|ls> <url> "
                 "[args...]\n");
    return 2;
  }
  std::string command = argv[1];
  auto transport = MakeTransport(argv[2]);
  if (!transport.ok()) return Fail(transport.status().ToString());

  if (command == "health" || command == "metrics" || command == "qos") {
    // `qos` dumps the proxy's per-tenant bucket/queue/shed counters
    // (QosController::ToJson; "{"enabled": false}" when QoS is off).
    Request request = Request::Get(command == "health" ? "/__scoop/health"
                                   : command == "qos"  ? "/__scoop/qos"
                                                       : "/__scoop/metrics");
    HttpResponse response = (*transport)->RoundTrip(std::move(request));
    std::string body = response.TakeBody();
    if (!response.ok()) {
      return Fail(std::to_string(response.status) + " " + body);
    }
    std::fputs(body.c_str(), stdout);
    return 0;
  }

  if (command == "auth") {
    if (argc != 5) return Fail("usage: auth <url> <tenant> <key>");
    auto creds = Authenticate(**transport, argv[3], argv[4]);
    if (!creds.ok()) return Fail(creds.status().ToString());
    std::printf("token: %s\naccount: %s\n", creds->first.c_str(),
                creds->second.c_str());
    return 0;
  }

  if (command == "put") {
    if (argc != 8) {
      return Fail("usage: put <url> <tenant> <key> <container> <object> "
                  "<data>");
    }
    auto client = MakeClient(**transport, argv[3], argv[4]);
    if (!client.ok()) return Fail(client.status().ToString());
    Status s = client->CreateContainer(argv[5]);
    if (!s.ok()) return Fail(s.ToString());
    s = client->PutObject(argv[5], argv[6], argv[7]);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("put %s/%s (%zu bytes)\n", argv[5], argv[6],
                std::string(argv[7]).size());
    return 0;
  }

  if (command == "get") {
    if (argc != 7) {
      return Fail("usage: get <url> <tenant> <key> <container> <object>");
    }
    auto client = MakeClient(**transport, argv[3], argv[4]);
    if (!client.ok()) return Fail(client.status().ToString());
    Result<std::string> body = client->GetObject(argv[5], argv[6]);
    if (!body.ok()) return Fail(body.status().ToString());
    std::fwrite(body->data(), 1, body->size(), stdout);
    return 0;
  }

  if (command == "ls") {
    if (argc != 6 && argc != 7) {
      return Fail("usage: ls <url> <tenant> <key> <container> [prefix]");
    }
    auto client = MakeClient(**transport, argv[3], argv[4]);
    if (!client.ok()) return Fail(client.status().ToString());
    auto objects = client->ListObjects(argv[5], argc == 7 ? argv[6] : "");
    if (!objects.ok()) return Fail(objects.status().ToString());
    for (const ObjectInfo& info : *objects) {
      std::printf("%s %llu %s\n", info.name.c_str(),
                  static_cast<unsigned long long>(info.size),
                  info.etag.c_str());
    }
    return 0;
  }

  return Fail("unknown command: " + command);
}

}  // namespace
}  // namespace scoop

int main(int argc, char** argv) { return scoop::Run(argc, argv); }
