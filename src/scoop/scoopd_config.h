// Config file for `scoopd`, the standalone proxy / object-server
// daemon. Plain `key = value` lines, `#` comments. Every process of one
// deployment is given the SAME cluster-shape keys — the ring is a pure
// function of them, so all processes agree on device placement without
// talking to each other (Swift's "ring file" distilled to a config
// stanza). See docs/RUNBOOK.md for the full key reference and a worked
// 1-proxy/3-object-server example.
#ifndef SCOOP_SCOOP_SCOOPD_CONFIG_H_
#define SCOOP_SCOOP_SCOOPD_CONFIG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "net/client.h"
#include "net/server.h"
#include "net/transport.h"
#include "objectstore/cluster.h"
#include "qos/qos.h"

namespace scoop {

// A tenant pre-registered at startup (`tenant = name:key:account` with
// an optional fourth `:tier` field, "gold" or "bronze"; default gold).
// Registration is deterministic, so every process of the deployment
// knows the same tenants; tokens are still issued per proxy process via
// GET /auth/v1.0 (see scoopd.cc).
struct ScoopdTenant {
  std::string tenant;
  std::string key;
  std::string account;
  TenantTier tier = TenantTier::kGold;
};

struct ScoopdConfig {
  // Which component of the deterministic cluster this process serves.
  std::string role;  // "proxy" | "object"
  int index = 0;     // proxy index or storage-node index

  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0: ephemeral (printed at startup)

  // Cluster shape — identical across every process of the deployment.
  SwiftConfig swift;
  bool cache_enabled = false;

  // Multi-tenant QoS envelope of this proxy process (qos_* keys; see
  // docs/RUNBOOK.md). Off by default — object role ignores it.
  qos::QosConfig qos;

  // Proxy role: object_server.N = host:port for storage node N. Must
  // cover all num_storage_nodes nodes.
  std::vector<net::TcpTransport::Endpoint> object_servers;

  // Listener limits / worker pool for this process's TcpServer.
  net::TcpServerConfig server;
  // Proxy-to-object-server client knobs (timeouts, pool size).
  net::TcpClientConfig client;

  std::vector<ScoopdTenant> tenants;

  static Result<ScoopdConfig> Parse(std::string_view text);
  static Result<ScoopdConfig> Load(const std::string& path);
};

}  // namespace scoop

#endif  // SCOOP_SCOOP_SCOOPD_CONFIG_H_
