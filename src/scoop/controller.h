#ifndef SCOOP_SCOOP_CONTROLLER_H_
#define SCOOP_SCOOP_CONTROLLER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "scoop/scoop.h"
#include "sql/ast.h"
#include "sql/catalyst.h"

namespace scoop {

// The Crystal-style control loop of the paper's §VII ("towards adaptive
// pushdown execution"): instead of a static per-tenant policy, pushdown
// eligibility is decided at runtime from
//   * storage-cluster load — the metered storlet CPU consumption — and a
//     configured budget; when the budget is exhausted, bronze tenants are
//     demoted to traditional ingest while gold tenants keep the
//     accelerated path;
//   * the filter's modeled effectiveness — the optimizer's selectivity
//     estimate; a filter expected to keep most rows is not worth the
//     storage CPU it would burn, so such queries are advised to ingest
//     traditionally even for gold tenants.
class AdaptivePushdownController {
 public:
  struct Options {
    // Storlet CPU-seconds the storage cluster donates per control window.
    double cpu_budget_seconds_per_window = 1.0;
    // Pushdown is advised only when the pushed filter is expected to
    // discard at least this fraction of rows.
    double min_estimated_discard = 0.2;
    // Result-cache stewardship: when > 0, a control window with at least
    // `min_cache_lookups_per_window` lookups whose hit ratio falls below
    // this threshold disables the proxy result cache — memory whose
    // budget buys no hits is returned to the cluster. 0 leaves the cache
    // alone.
    double min_cache_hit_ratio = 0.0;
    int64_t min_cache_lookups_per_window = 64;
  };

  AdaptivePushdownController(ScoopCluster* cluster, Options options)
      : cluster_(cluster), options_(options) {}

  // Registers a tenant account with its service tier.
  void SetTier(const std::string& account, TenantTier tier);

  // One control iteration: reads the storlet CPU meter accumulated since
  // the last tick and updates account policies. Returns true when bronze
  // accounts are currently demoted.
  bool Tick();

  // Per-query advice (§VII: "the effectiveness of the filter could be
  // modeled ... and contribute to the decision"): true when the statement
  // is worth pushing down under the current estimate threshold.
  Result<bool> AdvisePushdown(const SelectStatement& stmt,
                              const Schema& table_schema) const;
  Result<bool> AdvisePushdownSql(const std::string& sql,
                                 const Schema& table_schema) const;

  // Storlet CPU seconds consumed in the current window so far.
  double WindowCpuSeconds() const;

  // Result-cache hit ratio of the current window so far (hits over
  // lookups); 0 when the window saw no lookups.
  double WindowCacheHitRatio() const;
  // Lookups (hits + misses) observed in the current window so far.
  int64_t WindowCacheLookups() const;

  bool bronze_demoted() const { return bronze_demoted_; }
  // True once a Tick() disabled the result cache for poor hit ratio.
  bool cache_disabled() const { return cache_disabled_; }

 private:
  double TotalCpuSeconds() const;

  ScoopCluster* cluster_;
  Options options_;
  std::map<std::string, TenantTier> tiers_;
  double window_start_cpu_s_ = 0.0;
  int64_t window_start_cache_hits_ = 0;
  int64_t window_start_cache_misses_ = 0;
  bool bronze_demoted_ = false;
  bool cache_disabled_ = false;
};

}  // namespace scoop

#endif  // SCOOP_SCOOP_CONTROLLER_H_
