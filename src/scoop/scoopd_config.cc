#include "scoop/scoopd_config.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace scoop {
namespace {

Result<net::TcpTransport::Endpoint> ParseHostPort(std::string_view value) {
  size_t colon = value.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Status::InvalidArgument("expected host:port, got '" +
                                   std::string(value) + "'");
  }
  net::TcpTransport::Endpoint endpoint;
  endpoint.host = std::string(value.substr(0, colon));
  SCOOP_ASSIGN_OR_RETURN(int64_t port, ParseInt64(value.substr(colon + 1)));
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<bool> ParseBool(std::string_view value) {
  std::string v = ToLower(value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("expected bool, got '" + std::string(value) +
                                 "'");
}

}  // namespace

Result<ScoopdConfig> ScoopdConfig::Parse(std::string_view text) {
  ScoopdConfig config;
  int line_no = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected key = value", line_no));
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string_view value = Trim(line.substr(eq + 1));

    auto set_int = [&](int* out) -> Status {
      SCOOP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      *out = static_cast<int>(v);
      return Status::OK();
    };
    auto set_size = [&](size_t* out) -> Status {
      SCOOP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      if (v < 0) return Status::InvalidArgument(key + " must be >= 0");
      *out = static_cast<size_t>(v);
      return Status::OK();
    };
    auto set_int64 = [&](int64_t* out) -> Status {
      SCOOP_ASSIGN_OR_RETURN(*out, ParseInt64(value));
      return Status::OK();
    };
    // QoS rates/weights are whole numbers in the config (parsed as
    // integers, stored as the double the token bucket computes with).
    auto set_double = [&](double* out) -> Status {
      SCOOP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      if (v < 0) return Status::InvalidArgument(key + " must be >= 0");
      *out = static_cast<double>(v);
      return Status::OK();
    };

    Status s = Status::OK();
    if (key == "role") {
      config.role = std::string(value);
    } else if (key == "index") {
      s = set_int(&config.index);
    } else if (key == "listen_host") {
      config.listen_host = std::string(value);
    } else if (key == "listen_port") {
      SCOOP_ASSIGN_OR_RETURN(int64_t port, ParseInt64(value));
      if (port < 0 || port > 65535) {
        return Status::InvalidArgument("listen_port out of range");
      }
      config.listen_port = static_cast<uint16_t>(port);
    } else if (key == "num_proxies") {
      s = set_int(&config.swift.num_proxies);
    } else if (key == "num_storage_nodes") {
      s = set_int(&config.swift.num_storage_nodes);
    } else if (key == "disks_per_node") {
      s = set_int(&config.swift.disks_per_node);
    } else if (key == "num_zones") {
      s = set_int(&config.swift.num_zones);
    } else if (key == "part_power") {
      s = set_int(&config.swift.part_power);
    } else if (key == "replica_count") {
      s = set_int(&config.swift.replica_count);
    } else if (key == "cache_enabled") {
      SCOOP_ASSIGN_OR_RETURN(config.cache_enabled, ParseBool(value));
    } else if (key == "qos_enabled") {
      SCOOP_ASSIGN_OR_RETURN(config.qos.enabled, ParseBool(value));
    } else if (key == "qos_gold_rate") {
      s = set_double(&config.qos.gold.rate_per_s);
    } else if (key == "qos_gold_burst") {
      s = set_double(&config.qos.gold.burst);
    } else if (key == "qos_gold_weight") {
      s = set_double(&config.qos.gold.weight);
    } else if (key == "qos_gold_depth") {
      s = set_int(&config.qos.gold.max_queue_depth);
    } else if (key == "qos_bronze_rate") {
      s = set_double(&config.qos.bronze.rate_per_s);
    } else if (key == "qos_bronze_burst") {
      s = set_double(&config.qos.bronze.burst);
    } else if (key == "qos_bronze_weight") {
      s = set_double(&config.qos.bronze.weight);
    } else if (key == "qos_bronze_depth") {
      s = set_int(&config.qos.bronze.max_queue_depth);
    } else if (key == "qos_concurrency") {
      s = set_int(&config.qos.storlet_concurrency);
    } else if (key == "qos_pushdown_cost") {
      s = set_double(&config.qos.pushdown_cost);
    } else if (key == "qos_default_deadline_us") {
      s = set_int64(&config.qos.default_deadline_us);
    } else if (key == "qos_max_queue_wait_us") {
      s = set_int64(&config.qos.max_queue_wait_us);
    } else if (key == "qos_overload_queue_us") {
      s = set_int64(&config.qos.overload_queue_us);
    } else if (StartsWith(key, "object_server.")) {
      SCOOP_ASSIGN_OR_RETURN(
          int64_t n, ParseInt64(std::string_view(key).substr(14)));
      if (n < 0 || n > 4096) {
        return Status::InvalidArgument("bad object_server index: " + key);
      }
      if (static_cast<size_t>(n) >= config.object_servers.size()) {
        config.object_servers.resize(static_cast<size_t>(n) + 1);
      }
      SCOOP_ASSIGN_OR_RETURN(config.object_servers[static_cast<size_t>(n)],
                             ParseHostPort(value));
    } else if (key == "max_connections") {
      s = set_size(&config.server.max_connections);
    } else if (key == "max_inflight") {
      s = set_size(&config.server.max_inflight);
    } else if (key == "idle_timeout_ms") {
      s = set_int(&config.server.idle_timeout_ms);
    } else if (key == "num_workers") {
      s = set_size(&config.server.num_workers);
    } else if (key == "outbox_max_bytes") {
      s = set_size(&config.server.outbox_max_bytes);
    } else if (key == "max_body_bytes") {
      s = set_size(&config.server.max_body_bytes);
    } else if (key == "connect_timeout_ms") {
      s = set_int(&config.client.connect_timeout_ms);
    } else if (key == "io_timeout_ms") {
      s = set_int(&config.client.io_timeout_ms);
    } else if (key == "max_idle_sockets") {
      s = set_size(&config.client.max_idle_sockets);
    } else if (key == "tenant") {
      std::vector<std::string_view> parts = Split(value, ':');
      if (parts.size() != 3 && parts.size() != 4) {
        return Status::InvalidArgument(
            "tenant must be name:key:account[:tier], got '" +
            std::string(value) + "'");
      }
      ScoopdTenant tenant{std::string(parts[0]), std::string(parts[1]),
                          std::string(parts[2]), TenantTier::kGold};
      if (parts.size() == 4) {
        std::string tier_name = ToLower(parts[3]);
        if (tier_name != "gold" && tier_name != "bronze") {
          return Status::InvalidArgument("tenant tier must be gold|bronze: '" +
                                         std::string(parts[3]) + "'");
        }
        tenant.tier = ParseTenantTier(tier_name);
      }
      config.tenants.push_back(std::move(tenant));
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown key '%s'", line_no, key.c_str()));
    }
    SCOOP_RETURN_IF_ERROR(s);
  }

  if (config.role != "proxy" && config.role != "object") {
    return Status::InvalidArgument("role must be 'proxy' or 'object', got '" +
                                   config.role + "'");
  }
  int fleet = config.role == "proxy" ? config.swift.num_proxies
                                     : config.swift.num_storage_nodes;
  if (config.index < 0 || config.index >= fleet) {
    return Status::InvalidArgument(
        StrFormat("index %d out of range for role %s (fleet of %d)",
                  config.index, config.role.c_str(), fleet));
  }
  if (config.role == "proxy") {
    if (static_cast<int>(config.object_servers.size()) !=
        config.swift.num_storage_nodes) {
      return Status::InvalidArgument(StrFormat(
          "proxy role needs object_server.0..%d, got %d entries",
          config.swift.num_storage_nodes - 1,
          static_cast<int>(config.object_servers.size())));
    }
    for (size_t n = 0; n < config.object_servers.size(); ++n) {
      if (config.object_servers[n].host.empty()) {
        return Status::InvalidArgument(
            StrFormat("missing object_server.%d", static_cast<int>(n)));
      }
    }
  }
  config.server.host = config.listen_host;
  config.server.port = config.listen_port;
  return config;
}

Result<ScoopdConfig> ScoopdConfig::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace scoop
