#ifndef SCOOP_SCOOP_SCOOP_H_
#define SCOOP_SCOOP_SCOOP_H_

#include <memory>
#include <string>

#include "cache/cache_middleware.h"
#include "cache/result_cache.h"
#include "cache/singleflight.h"
#include "common/result.h"
#include "compute/session.h"
#include "compute/storlet_rdd.h"
#include "datasource/csv_source.h"
#include "datasource/parquet_source.h"
#include "datasource/stocator.h"
#include "objectstore/cluster.h"
#include "qos/qos.h"
#include "qos/qos_middleware.h"
#include "storlets/engine.h"
#include "storlets/storlet_middleware.h"

namespace scoop {

// The assembled Scoop storage cluster: an OpenStack-Swift-like object
// store whose proxy and object-server pipelines carry the Storlet engine,
// with the CSV and ETL pushdown filters deployed. This is the paper's
// Fig. 3 storage side in one object.
class ScoopCluster {
 public:
  // Builds the cluster and installs the storlet middleware at both stages
  // plus the pushdown result cache + singleflight middleware on every
  // proxy (between auth and the proxy-stage storlet middleware). The
  // CSVStorlet and EtlStorlet ship pre-deployed; more filters can be
  // registered through engine().registry() at any time ("on-the-fly"
  // extension, §IV). The cache ships disabled by default
  // (cache_config.enabled) and can be toggled at runtime through
  // result_cache(). When qos_config.enabled, every proxy gets the QoS
  // admission middleware (between auth and the cache) and the storlet
  // engine is gated by the weighted fair queue (DESIGN.md §3k).
  static Result<std::unique_ptr<ScoopCluster>> Create(
      const SwiftConfig& config = SwiftConfig(),
      const ResultCacheConfig& cache_config = ResultCacheConfig(),
      const qos::QosConfig& qos_config = qos::QosConfig());

  SwiftCluster& swift() { return *swift_; }
  StorletEngine& engine() { return *engine_; }
  PolicyStore& policies() { return engine_->policies(); }
  MetricRegistry& metrics() { return swift_->metrics(); }
  ResultCache& result_cache() { return *cache_; }
  Singleflight& singleflight() { return *flights_; }
  // Null unless the cluster was built with qos_config.enabled.
  qos::QosController* qos() { return qos_.get(); }

  // The (process-global) trace collector, surfaced here for controllers
  // and tests: Enable() around a query, then Snapshot()/DumpJson() to see
  // the span tree stocator -> proxy -> object server -> storlet stages
  // with per-hop durations. Disabled it costs one atomic load per site
  // (DESIGN.md §3f).
  TraceCollector& traces() { return TraceCollector::Global(); }

  // Registers a tenant and returns a connected client.
  Result<SwiftClient> Connect(const std::string& tenant,
                              const std::string& key,
                              const std::string& account);

  // Scale-out: adds a storage node (ring rebalance + storlet middleware on
  // the new node) and migrates replicas onto it. Pushdown keeps working
  // on the enlarged cluster immediately.
  Status AddStorageNode(int disks);

 private:
  ScoopCluster() = default;

  std::unique_ptr<SwiftCluster> swift_;
  std::shared_ptr<StorletEngine> engine_;
  std::shared_ptr<ResultCache> cache_;
  std::shared_ptr<Singleflight> flights_;
  std::shared_ptr<qos::QosController> qos_;
};

// The compute side bound to one tenant: a SparkSession plus the Stocator
// connector, with helpers to register CSV (pushdown or vanilla) and
// parquet-like tables. This is the public API the examples and benches
// program against.
class ScoopSession {
 public:
  ScoopSession(ScoopCluster* cluster, SwiftClient client, int num_workers)
      : cluster_(cluster),
        client_(std::move(client)),
        stocator_(&client_, &cluster->metrics()),
        spark_(num_workers) {
    spark_.set_metrics(&cluster->metrics());
  }

  ScoopSession(const ScoopSession&) = delete;
  ScoopSession& operator=(const ScoopSession&) = delete;

  SwiftClient& client() { return client_; }
  Stocator& stocator() { return stocator_; }
  SparkSession& spark() { return spark_; }
  ScoopCluster& cluster() { return *cluster_; }

  // Registers `name` over CSV objects in container/prefix. `pushdown`
  // selects Scoop (true) vs plain ingest-then-compute (false).
  void RegisterCsvTable(const std::string& name, const std::string& container,
                        const std::string& prefix, const Schema& schema,
                        bool pushdown,
                        CsvSourceOptions options = CsvSourceOptions());

  // Registers `name` over parquet-like objects (the Fig. 8 baseline).
  void RegisterParquetTable(const std::string& name,
                            const std::string& container,
                            const std::string& prefix, const Schema& schema,
                            bool stats_skipping = false);

  // Runs a SQL query against a registered table.
  Result<QueryOutcome> Sql(const std::string& query) {
    return spark_.Sql(query);
  }

  // §VII programmatic offload: run `storlet` on every object of a dataset.
  StorletRdd MakeStorletRdd(const std::string& container,
                            const std::string& prefix,
                            const std::string& storlet, StorletParams params) {
    return StorletRdd(&client_, &spark_.scheduler(), container, prefix,
                      storlet, std::move(params));
  }

 private:
  ScoopCluster* cluster_;
  SwiftClient client_;
  Stocator stocator_;
  SparkSession spark_;
};

}  // namespace scoop

#endif  // SCOOP_SCOOP_SCOOP_H_
