// Wires a ScoopCluster's tiers together over real loopback TCP instead
// of in-process calls: every object server and every proxy gets its own
// epoll listener (src/net), proxies reach object servers through pooled
// TcpClients, and clients reach proxies through a round-robin
// TcpTransport. The cluster itself is unchanged — same ring, same
// middleware pipelines, same storlets — so responses are byte-identical
// to simnet; only the hop between tiers becomes a wire (DESIGN.md §3j).
//
// This is the single-process form (all listeners in one address space,
// which keeps process-global failpoints usable under chaos tests). The
// multi-process form is `scoopd` (scoop/scoopd.cc), which serves one
// role per process from the same building blocks.
#ifndef SCOOP_SCOOP_TCP_FABRIC_H_
#define SCOOP_SCOOP_TCP_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/client.h"
#include "net/server.h"
#include "net/transport.h"
#include "scoop/scoop.h"

namespace scoop {

class TcpFabric {
 public:
  struct Options {
    // Template for every listener; `port` is ignored (each listener
    // binds an ephemeral port, read back from the endpoints() lists).
    net::TcpServerConfig server;
    // Template for every client; `host`/`port` are filled per endpoint.
    net::TcpClientConfig client;
  };

  // Starts listeners for every tier of `cluster` and swaps each proxy's
  // backend over to TCP. `cluster` must outlive the fabric.
  static Result<std::unique_ptr<TcpFabric>> Start(ScoopCluster* cluster,
                                                  const Options& options = {});

  // Stops all listeners and restores the in-process backend on every
  // proxy, returning the cluster to pure-simnet operation.
  ~TcpFabric();

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  // Client entry point over the wire: round-robins across the proxy
  // listeners (the TCP analogue of SwiftCluster::Handle).
  HttpResponse Handle(Request request);

  // Registers a tenant on the cluster's auth service and returns a
  // client whose every request crosses the proxy listeners via TCP.
  Result<SwiftClient> Connect(const std::string& tenant,
                              const std::string& key,
                              const std::string& account);

  const std::vector<net::TcpTransport::Endpoint>& proxy_endpoints() const {
    return proxy_endpoints_;
  }
  const std::vector<net::TcpTransport::Endpoint>& object_endpoints() const {
    return object_endpoints_;
  }

 private:
  TcpFabric() = default;

  ScoopCluster* cluster_ = nullptr;
  // Listener per object server, then the per-node clients proxies use.
  std::vector<std::unique_ptr<net::TcpServer>> object_listeners_;
  std::vector<std::unique_ptr<net::TcpClient>> node_clients_;
  std::vector<int> device_to_node_;  // ring device id -> node index
  // Listener per proxy, and the round-robin front door over them.
  std::vector<std::unique_ptr<net::TcpServer>> proxy_listeners_;
  std::unique_ptr<net::TcpTransport> front_;
  std::vector<net::TcpTransport::Endpoint> proxy_endpoints_;
  std::vector<net::TcpTransport::Endpoint> object_endpoints_;
};

}  // namespace scoop

#endif  // SCOOP_SCOOP_TCP_FABRIC_H_
