#include "scoop/controller.h"

#include "sql/parser.h"

namespace scoop {

void AdaptivePushdownController::SetTier(const std::string& account,
                                         TenantTier tier) {
  tiers_[account] = tier;
}

double AdaptivePushdownController::TotalCpuSeconds() const {
  return static_cast<double>(
             cluster_->metrics().GetCounter("storlet.exec_ns")->value()) /
         1e9;
}

double AdaptivePushdownController::WindowCpuSeconds() const {
  return TotalCpuSeconds() - window_start_cpu_s_;
}

double AdaptivePushdownController::WindowCacheHitRatio() const {
  int64_t lookups = WindowCacheLookups();
  if (lookups == 0) return 0.0;
  int64_t hits = cluster_->metrics().GetCounter("cache.hits")->value() -
                 window_start_cache_hits_;
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

int64_t AdaptivePushdownController::WindowCacheLookups() const {
  MetricRegistry& metrics = cluster_->metrics();
  return (metrics.GetCounter("cache.hits")->value() -
          window_start_cache_hits_) +
         (metrics.GetCounter("cache.misses")->value() -
          window_start_cache_misses_);
}

bool AdaptivePushdownController::Tick() {
  double used = WindowCpuSeconds();
  bool hot = used > options_.cpu_budget_seconds_per_window;
  if (hot != bronze_demoted_) {
    for (const auto& [account, tier] : tiers_) {
      if (tier != TenantTier::kBronze) continue;
      StorletPolicy policy;
      policy.pushdown_enabled = !hot;
      cluster_->policies().SetAccountPolicy(account, policy);
    }
    bronze_demoted_ = hot;
  }
  // Result-cache stewardship: a window of real traffic whose hit ratio
  // stays under the configured floor means the byte budget is buying
  // nothing — give the memory back (the cache can be re-enabled by hand).
  if (options_.min_cache_hit_ratio > 0.0 &&
      cluster_->result_cache().enabled() &&
      WindowCacheLookups() >= options_.min_cache_lookups_per_window &&
      WindowCacheHitRatio() < options_.min_cache_hit_ratio) {
    cluster_->result_cache().set_enabled(false);
    cache_disabled_ = true;
  }
  // A new control window starts each tick.
  window_start_cpu_s_ = TotalCpuSeconds();
  MetricRegistry& metrics = cluster_->metrics();
  window_start_cache_hits_ = metrics.GetCounter("cache.hits")->value();
  window_start_cache_misses_ = metrics.GetCounter("cache.misses")->value();
  return bronze_demoted_;
}

Result<bool> AdaptivePushdownController::AdvisePushdown(
    const SelectStatement& stmt, const Schema& table_schema) const {
  SCOOP_ASSIGN_OR_RETURN(PushdownExtraction extraction,
                         ExtractPushdown(stmt, table_schema));
  if (extraction.pushed_filter.IsTrue()) {
    // Nothing pushable beyond projection: projection alone is cheap at the
    // store and always shrinks transfers, so still advise pushdown when
    // the query prunes columns.
    return extraction.required_columns.size() < table_schema.size();
  }
  double discard = 1.0 - extraction.estimated_row_pass_rate;
  return discard >= options_.min_estimated_discard;
}

Result<bool> AdaptivePushdownController::AdvisePushdownSql(
    const std::string& sql, const Schema& table_schema) const {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return AdvisePushdown(stmt, table_schema);
}

}  // namespace scoop
