#include "scoop/controller.h"

#include "sql/parser.h"

namespace scoop {

void AdaptivePushdownController::SetTier(const std::string& account,
                                         TenantTier tier) {
  tiers_[account] = tier;
}

double AdaptivePushdownController::TotalCpuSeconds() const {
  return static_cast<double>(
             cluster_->metrics().GetCounter("storlet.exec_ns")->value()) /
         1e9;
}

double AdaptivePushdownController::WindowCpuSeconds() const {
  return TotalCpuSeconds() - window_start_cpu_s_;
}

bool AdaptivePushdownController::Tick() {
  double used = WindowCpuSeconds();
  bool hot = used > options_.cpu_budget_seconds_per_window;
  if (hot != bronze_demoted_) {
    for (const auto& [account, tier] : tiers_) {
      if (tier != TenantTier::kBronze) continue;
      StorletPolicy policy;
      policy.pushdown_enabled = !hot;
      cluster_->policies().SetAccountPolicy(account, policy);
    }
    bronze_demoted_ = hot;
  }
  // A new control window starts each tick.
  window_start_cpu_s_ = TotalCpuSeconds();
  return bronze_demoted_;
}

Result<bool> AdaptivePushdownController::AdvisePushdown(
    const SelectStatement& stmt, const Schema& table_schema) const {
  SCOOP_ASSIGN_OR_RETURN(PushdownExtraction extraction,
                         ExtractPushdown(stmt, table_schema));
  if (extraction.pushed_filter.IsTrue()) {
    // Nothing pushable beyond projection: projection alone is cheap at the
    // store and always shrinks transfers, so still advise pushdown when
    // the query prunes columns.
    return extraction.required_columns.size() < table_schema.size();
  }
  double discard = 1.0 - extraction.estimated_row_pass_rate;
  return discard >= options_.min_estimated_discard;
}

Result<bool> AdaptivePushdownController::AdvisePushdownSql(
    const std::string& sql, const Schema& table_schema) const {
  SCOOP_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return AdvisePushdown(stmt, table_schema);
}

}  // namespace scoop
