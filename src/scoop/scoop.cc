#include "scoop/scoop.h"

#include "csv/agg_storlet.h"
#include "csv/csv_storlet.h"
#include "csv/etl_storlet.h"
#include "mediameta/image_meta_storlet.h"
#include "storlets/compress_storlet.h"

namespace scoop {

Result<std::unique_ptr<ScoopCluster>> ScoopCluster::Create(
    const SwiftConfig& config, const ResultCacheConfig& cache_config,
    const qos::QosConfig& qos_config) {
  auto cluster = std::unique_ptr<ScoopCluster>(new ScoopCluster());
  SCOOP_ASSIGN_OR_RETURN(cluster->swift_, SwiftCluster::Create(config));

  auto registry = std::make_shared<StorletRegistry>();
  auto policies = std::make_shared<PolicyStore>();
  cluster->engine_ = std::make_shared<StorletEngine>(
      registry, policies, &cluster->swift_->metrics());

  // Ship the paper's filters pre-deployed: the CSVStorlet and ETL storlet
  // of §V plus the §IV/§VI-C/§VII extensions (partial aggregation,
  // compression).
  const std::pair<const char*, StorletFactory> kBuiltins[] = {
      {CsvStorlet::kName, &CsvStorlet::Make},
      {EtlStorlet::kName, &EtlStorlet::Make},
      {GroupAggStorlet::kName, &GroupAggStorlet::Make},
      {CompressStorlet::kName, &CompressStorlet::Make},
      {DecompressStorlet::kName, &DecompressStorlet::Make},
      {ImageMetaStorlet::kName, &ImageMetaStorlet::Make},
  };
  for (const auto& [name, factory] : kBuiltins) {
    SCOOP_RETURN_IF_ERROR(registry->RegisterFactory(name, factory));
    SCOOP_RETURN_IF_ERROR(registry->Deploy(name));
  }

  // The proxy-tier pushdown result cache and its singleflight coalescer.
  // One instance each, shared by every proxy — the cache amortizes
  // storage CPU across the whole fleet, and coalescing only works if all
  // proxies join the same flight table. The singleflight's fill buffer
  // matches the largest entry the cache would admit.
  cluster->cache_ = std::make_shared<ResultCache>(
      cache_config, &cluster->swift_->metrics());
  cluster->flights_ = std::make_shared<Singleflight>(
      &cluster->swift_->metrics(), cluster->cache_->max_entry_bytes());

  // Multi-tenant QoS (DESIGN.md §3k): one controller per cluster. The
  // proxy middleware below runs admission; the engine's invocation gate
  // runs the weighted fair queue, its ticket held until the filtered
  // stream drains so a slot covers the whole storlet execution.
  if (qos_config.enabled) {
    cluster->qos_ = std::make_shared<qos::QosController>(
        qos_config, &cluster->swift_->metrics());
    std::shared_ptr<qos::QosController> controller = cluster->qos_;
    cluster->engine_->set_invocation_gate(
        [controller](const std::string& account)
            -> Result<std::shared_ptr<void>> {
          SCOOP_ASSIGN_OR_RETURN(std::shared_ptr<qos::QosTicket> ticket,
                                 controller->AcquireStorletSlot(account));
          return std::shared_ptr<void>(std::move(ticket));
        });
  }

  // Install the middleware: object servers get the storlet stage (the
  // default execution site); proxies get QoS admission first (auth ran
  // already — SwiftCluster installs it at pipeline head — so the tier
  // stamp is trustworthy and throttled requests touch nothing else),
  // then result cache + singleflight (so hits and coalesced fans never
  // reach the storlet), then the proxy storlet stage (PUT-path ETL and
  // the staging override).
  for (auto& server : cluster->swift_->object_servers()) {
    server->pipeline().Use(std::make_shared<StorletMiddleware>(
        ExecutionStage::kObjectNode, cluster->engine_));
  }
  for (auto& proxy : cluster->swift_->proxies()) {
    if (cluster->qos_ != nullptr) {
      proxy->pipeline().Use(std::make_shared<qos::QosMiddleware>(
          cluster->qos_, &cluster->engine_->policies()));
    }
    proxy->pipeline().Use(std::make_shared<ResultCacheMiddleware>(
        cluster->cache_, cluster->flights_, &cluster->swift_->registry(),
        &cluster->swift_->metrics()));
    proxy->pipeline().Use(std::make_shared<StorletMiddleware>(
        ExecutionStage::kProxy, cluster->engine_));
  }
  return cluster;
}

Status ScoopCluster::AddStorageNode(int disks) {
  SCOOP_ASSIGN_OR_RETURN(ObjectServer * server,
                         swift_->AddStorageNode(disks));
  server->pipeline().Use(std::make_shared<StorletMiddleware>(
      ExecutionStage::kObjectNode, engine_));
  // Populate the node and drop the now-stray handoff copies.
  swift_->RunReplication(/*remove_handoffs=*/true);
  return Status::OK();
}

Result<SwiftClient> ScoopCluster::Connect(const std::string& tenant,
                                          const std::string& key,
                                          const std::string& account) {
  return SwiftClient::Connect(swift_.get(), tenant, key, account);
}

void ScoopSession::RegisterCsvTable(const std::string& name,
                                    const std::string& container,
                                    const std::string& prefix,
                                    const Schema& schema, bool pushdown,
                                    CsvSourceOptions options) {
  options.pushdown_enabled = pushdown;
  spark_.RegisterTable(name,
                       std::make_shared<CsvDataSource>(
                           &stocator_, container, prefix, schema, options));
}

void ScoopSession::RegisterParquetTable(const std::string& name,
                                        const std::string& container,
                                        const std::string& prefix,
                                        const Schema& schema,
                                        bool stats_skipping) {
  spark_.RegisterTable(name, std::make_shared<ParquetDataSource>(
                                 &client_, container, prefix, schema,
                                 stats_skipping));
}

}  // namespace scoop
