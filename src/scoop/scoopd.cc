// scoopd: the standalone Scoop daemon. One process serves ONE component
// of the deployment — a proxy or an object server — selected by the
// `role`/`index` keys of its config file. Every process builds the same
// deterministic cluster from the same shape keys, so the ring (and hence
// device placement) agrees fleet-wide without any coordination.
//
//   scoopd <config-file>
//
// Admin endpoints on every role:
//   GET /__scoop/health    liveness: "ok <role> <index>"
//   GET /__scoop/metrics   MetricRegistry::ToJson() snapshot
// Proxy role additionally serves tempauth-style token issue and the
// QoS snapshot:
//   GET /auth/v1.0         X-Auth-User/X-Auth-Key -> X-Auth-Token
//   GET /__scoop/qos       QosController::ToJson() (buckets, queue,
//                          per-tenant shed/degrade counters)
//
// See docs/RUNBOOK.md for a worked 1-proxy/3-object-server deployment.
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "objectstore/http.h"
#include "scoop/scoop.h"
#include "scoop/scoopd_config.h"

namespace scoop {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int Run(const std::string& config_path) {
  Result<ScoopdConfig> loaded = ScoopdConfig::Load(config_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "scoopd: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ScoopdConfig config = std::move(*loaded);

  ResultCacheConfig cache_config;
  cache_config.enabled = config.cache_enabled;
  Result<std::unique_ptr<ScoopCluster>> created =
      ScoopCluster::Create(config.swift, cache_config, config.qos);
  if (!created.ok()) {
    std::fprintf(stderr, "scoopd: cluster: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ScoopCluster> cluster = std::move(*created);
  SwiftCluster& swift = cluster->swift();

  // Deterministic tenant registration: all processes know the same
  // tenants, so any proxy can validate any account path. Tokens are
  // per-proxy-process (see /auth/v1.0 below).
  for (const ScoopdTenant& t : config.tenants) {
    Status s = swift.auth().RegisterTenant(t.tenant, t.key, t.account, t.tier);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) {
      std::fprintf(stderr, "scoopd: tenant %s: %s\n", t.tenant.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }

  const bool is_proxy = config.role == "proxy";
  HttpHandler app;
  std::vector<std::unique_ptr<net::TcpClient>> node_clients;
  std::vector<int> device_to_node;

  if (is_proxy) {
    for (const auto& endpoint : config.object_servers) {
      net::TcpClientConfig client_config = config.client;
      client_config.host = endpoint.host;
      client_config.port = endpoint.port;
      node_clients.push_back(std::make_unique<net::TcpClient>(
          client_config, &swift.metrics()));
    }
    device_to_node.resize(swift.ring().devices().size());
    for (const RingDevice& d : swift.ring().devices()) {
      device_to_node[d.id] = d.node;
    }
    ProxyServer* proxy = swift.proxies()[config.index].get();
    proxy->set_backend([&node_clients, &device_to_node](
                           int device_id, Request& request) -> HttpResponse {
      if (device_id < 0 ||
          device_id >= static_cast<int>(device_to_node.size())) {
        return HttpResponse::Make(500, "no such device");
      }
      int node = device_to_node[device_id];
      return node_clients[node]->RoundTrip(std::move(request));
    });
    app = [proxy](Request& request) { return proxy->Handle(request); };
  } else {
    ObjectServer* server = swift.object_servers()[config.index].get();
    app = [server](Request& request) { return server->Handle(request); };
  }

  std::string health = "ok " + config.role + " " +
                       std::to_string(config.index) + "\n";
  HttpHandler handler = [&](Request& request) -> HttpResponse {
    if (request.path == "/__scoop/health") {
      return HttpResponse::Make(200, health);
    }
    if (request.path == "/__scoop/metrics") {
      return HttpResponse::Make(200, swift.metrics().ToJson());
    }
    if (is_proxy && request.path == "/__scoop/qos") {
      qos::QosController* qos = cluster->qos();
      if (qos == nullptr) {
        return HttpResponse::Make(200, "{\"enabled\": false}");
      }
      return HttpResponse::Make(200, qos->ToJson());
    }
    if (is_proxy && request.path == "/auth/v1.0") {
      auto user = request.headers.Get("X-Auth-User");
      auto key = request.headers.Get("X-Auth-Key");
      if (!user || !key) {
        return HttpResponse::Make(401, "missing X-Auth-User / X-Auth-Key");
      }
      Result<std::string> token = swift.auth().IssueToken(*user, *key);
      if (!token.ok()) {
        return HttpResponse::Make(401, token.status().ToString());
      }
      std::string account;
      for (const ScoopdTenant& t : config.tenants) {
        if (t.tenant == *user) account = t.account;
      }
      HttpResponse response = HttpResponse::Make(200, account + "\n");
      response.headers.Set("X-Auth-Token", *token);
      response.headers.Set("X-Storage-Account", account);
      return response;
    }
    return app(request);
  };

  Result<std::unique_ptr<net::TcpServer>> started =
      net::TcpServer::Start(config.server, handler, &swift.metrics());
  if (!started.ok()) {
    std::fprintf(stderr, "scoopd: listen: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::TcpServer> listener = std::move(*started);
  std::printf("scoopd: %s %d listening on %s:%u\n", config.role.c_str(),
              config.index, listener->host().c_str(),
              static_cast<unsigned>(listener->port()));
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("scoopd: %s %d shutting down\n", config.role.c_str(),
              config.index);
  listener->Stop();
  return 0;
}

}  // namespace
}  // namespace scoop

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: scoopd <config-file>\n");
    return 2;
  }
  return scoop::Run(argv[1]);
}
