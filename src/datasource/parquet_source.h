#ifndef SCOOP_DATASOURCE_PARQUET_SOURCE_H_
#define SCOOP_DATASOURCE_PARQUET_SOURCE_H_

#include <string>

#include "datasource/datasource.h"
#include "objectstore/cluster.h"

namespace scoop {

// Data source over parquet-like columnar objects — the Fig. 8 baseline.
// Mirrors how Spark consumes Parquet from an object store: the whole
// (compressed) object travels to the compute cluster, where the client
// decompresses and prunes columns; row filters stay compute-side (so
// ScanPartition never reports filter_applied). Optional min/max row-group
// skipping avoids transferring objects a predicate cannot match.
class ParquetDataSource : public PrunedScan,
                          public TableScan,
                          public PartitionedRelation {
 public:
  ParquetDataSource(SwiftClient* client, std::string container,
                    std::string prefix, Schema schema,
                    bool stats_skipping = false)
      : client_(client),
        container_(std::move(container)),
        prefix_(std::move(prefix)),
        schema_(std::move(schema)),
        stats_skipping_(stats_skipping) {}

  const Schema& schema() const override { return schema_; }

  // One partition per object (a columnar row group cannot be split by
  // byte range the way CSV text can).
  Result<std::vector<Partition>> Partitions() override;

  Result<PartitionScanResult> ScanPartition(
      const Partition& partition,
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter) override;

  Result<std::vector<Row>> Scan() override;
  Result<std::vector<Row>> ScanPruned(
      const std::vector<std::string>& required_columns) override;

 private:
  SwiftClient* client_;
  std::string container_;
  std::string prefix_;
  Schema schema_;
  bool stats_skipping_;
};

// Encodes `rows` and uploads them as one parquet-like object.
Status WriteParquetObject(SwiftClient* client, const std::string& container,
                          const std::string& object, const Schema& schema,
                          const std::vector<Row>& rows);

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_PARQUET_SOURCE_H_
