#ifndef SCOOP_DATASOURCE_PARTITIONER_H_
#define SCOOP_DATASOURCE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "objectstore/cluster.h"

namespace scoop {

// One unit of parallel work: a byte range of one object, assigned to one
// task (the Hadoop RDD partition of the paper's §V-B flow).
struct Partition {
  int index = 0;  // global partition index, drives merge order
  std::string container;
  std::string object;
  uint64_t first = 0;       // inclusive
  uint64_t last = 0;        // inclusive
  uint64_t object_size = 0;

  uint64_t length() const { return last - first + 1; }
};

// The Hadoop-style partition discovery the paper describes (§V-B): every
// object with `prefix` in `container` is cut into chunks of `chunk_size`
// bytes (the "HDFS chunk size"), one partition per chunk. Runs before any
// query is known.
Result<std::vector<Partition>> DiscoverPartitions(SwiftClient* client,
                                                  const std::string& container,
                                                  const std::string& prefix,
                                                  uint64_t chunk_size);

// The object-aware alternative of §VII: instead of inheriting the HDFS
// chunk size, cut the dataset into roughly `target_parallelism` equal
// partitions, never splitting finer than `min_partition_bytes` and always
// respecting object boundaries.
Result<std::vector<Partition>> DiscoverPartitionsObjectAware(
    SwiftClient* client, const std::string& container,
    const std::string& prefix, int target_parallelism,
    uint64_t min_partition_bytes);

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_PARTITIONER_H_
