#include "datasource/csv_source.h"

#include "csv/record_reader.h"

namespace scoop {

Result<std::vector<Partition>> CsvDataSource::Partitions() {
  if (options_.object_aware_partitioning) {
    return DiscoverPartitionsObjectAware(
        stocator_->client(), container_, prefix_, options_.target_parallelism,
        options_.min_partition_bytes);
  }
  return DiscoverPartitions(stocator_->client(), container_, prefix_,
                            options_.chunk_size);
}

Result<PartitionScanResult> CsvDataSource::ScanPartition(
    const Partition& partition,
    const std::vector<std::string>& required_columns,
    const SourceFilter& filter) {
  PartitionScanResult result;
  result.raw_bytes = partition.length();

  const PushdownTask* task_ptr = nullptr;
  PushdownTask task;
  if (options_.pushdown_enabled) {
    task.schema = schema_;
    task.projection = required_columns;
    task.selection = filter;
    task.compress_transfer = options_.compress_transfer;
    task_ptr = &task;
  }
  SCOOP_ASSIGN_OR_RETURN(Stocator::ReadResult read,
                         stocator_->ReadPartition(partition, task_ptr));
  result.bytes_transferred = read.bytes_transferred;
  result.requests = read.requests;
  result.filter_applied = read.pushdown_executed;

  // With pushdown the storlet already projected the record to
  // required-column order; otherwise we parse full records and project.
  SCOOP_ASSIGN_OR_RETURN(Schema pruned, schema_.Select(required_columns));
  if (read.pushdown_executed) {
    CsvRowReader reader(read.data, &pruned);
    Row row;
    while (reader.Next(&row)) result.rows.push_back(row);
    return result;
  }

  std::vector<int> indices;
  indices.reserve(required_columns.size());
  for (const std::string& name : required_columns) {
    indices.push_back(schema_.IndexOf(name));
  }
  CsvRowReader reader(read.data, &schema_);
  Row row;
  while (reader.Next(&row)) {
    Row projected;
    projected.reserve(indices.size());
    for (int idx : indices) {
      projected.push_back(idx >= 0 ? row[static_cast<size_t>(idx)]
                                   : Value::Null());
    }
    result.rows.push_back(std::move(projected));
  }
  return result;
}

Result<std::vector<Row>> CsvDataSource::ScanPrunedFiltered(
    const std::vector<std::string>& required_columns,
    const SourceFilter& filter, bool* filter_applied) {
  SCOOP_ASSIGN_OR_RETURN(std::vector<Partition> partitions, Partitions());
  std::vector<Row> rows;
  bool all_filtered = true;
  for (const Partition& partition : partitions) {
    SCOOP_ASSIGN_OR_RETURN(
        PartitionScanResult scan,
        ScanPartition(partition, required_columns, filter));
    all_filtered = all_filtered && scan.filter_applied;
    for (Row& row : scan.rows) rows.push_back(std::move(row));
  }
  if (filter_applied != nullptr) {
    *filter_applied = all_filtered && !partitions.empty();
  }
  return rows;
}

Result<std::vector<Row>> CsvDataSource::ScanPruned(
    const std::vector<std::string>& required_columns) {
  bool applied = false;
  return ScanPrunedFiltered(required_columns, SourceFilter::True(), &applied);
}

Result<std::vector<Row>> CsvDataSource::Scan() {
  std::vector<std::string> all;
  for (const Column& column : schema_.columns()) all.push_back(column.name);
  return ScanPruned(all);
}

}  // namespace scoop
