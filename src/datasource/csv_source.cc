#include "datasource/csv_source.h"

#include <numeric>

#include "columnar/simd.h"
#include "csv/batch_reader.h"

namespace scoop {

Result<std::vector<Partition>> CsvDataSource::Partitions() {
  if (options_.object_aware_partitioning) {
    return DiscoverPartitionsObjectAware(
        stocator_->client(), container_, prefix_, options_.target_parallelism,
        options_.min_partition_bytes);
  }
  return DiscoverPartitions(stocator_->client(), container_, prefix_,
                            options_.chunk_size);
}

Result<PartitionScanResult> CsvDataSource::ScanPartition(
    const Partition& partition,
    const std::vector<std::string>& required_columns,
    const SourceFilter& filter) {
  ScanSpec spec;
  spec.required_columns = required_columns;
  spec.filter = filter;
  return ScanPartition(partition, spec);
}

Result<PartitionScanResult> CsvDataSource::ScanPartition(
    const Partition& partition, const ScanSpec& spec) {
  const std::vector<std::string>& required_columns = spec.required_columns;
  const SourceFilter& filter = spec.filter;
  PartitionScanResult result;
  result.raw_bytes = partition.length();

  const PushdownTask* task_ptr = nullptr;
  PushdownTask task;
  if (options_.pushdown_enabled) {
    task.schema = schema_;
    task.projection = required_columns;
    task.selection = filter;
    task.compress_transfer = options_.compress_transfer;
    if (options_.agg_pushdown_enabled) task.aggregate = spec.aggregate;
    if (options_.limit_pushdown_enabled && task.aggregate == nullptr) {
      task.limit = spec.limit;
    }
    task_ptr = &task;
  }
  SCOOP_ASSIGN_OR_RETURN(Stocator::ReadResult read,
                         stocator_->ReadPartition(partition, task_ptr));
  result.bytes_transferred = read.bytes_transferred;
  result.requests = read.requests;
  result.filter_applied = read.pushdown_executed;
  result.limit_applied = read.limit_hit;

  if (read.pushdown_executed && task.aggregate != nullptr) {
    // The partition arrived as partial aggregate states, not rows: decode
    // the SAG1 frame(s) and hand the groups to the engine to merge. A
    // frame whose aggregate list disagrees with the request would merge
    // into nonsense — reject it instead.
    AggWireReader frames;
    frames.Feed(read.data);
    AggPartialFrame frame;
    for (;;) {
      SCOOP_ASSIGN_OR_RETURN(bool got, frames.Next(&frame));
      if (!got) break;
      if (frame.agg_kinds != task.aggregate->agg_kinds) {
        return Status::InvalidArgument(
            "agg pushdown: frame aggregates do not match the request");
      }
      result.agg_rows += frame.rows;
      for (AggPartialGroup& group : frame.groups) {
        result.agg_groups.push_back(std::move(group));
      }
    }
    if (frames.buffered_bytes() != 0) {
      return Status::InvalidArgument(
          "agg pushdown: trailing bytes after SAG1 frames");
    }
    result.agg_applied = true;
    return result;
  }

  // With pushdown the storlet already projected the record to
  // required-column order; otherwise we scan full-schema batches and
  // project by sharing column vectors (zero copy).
  SCOOP_ASSIGN_OR_RETURN(Schema pruned, schema_.Select(required_columns));
  MetricRegistry* metrics = stocator_->metrics();
  Counter* batches_counter =
      metrics != nullptr ? metrics->GetCounter("csv.batches") : nullptr;
  Counter* simd_bytes =
      metrics != nullptr ? metrics->GetCounter("csv.simd_bytes") : nullptr;
  ExponentialHistogram* rows_per_batch =
      metrics != nullptr ? metrics->GetHistogram("scan.rows_per_batch")
                         : nullptr;
  auto account = [&](const RecordBatch& batch) {
    if (batches_counter != nullptr) batches_counter->Increment();
    if (rows_per_batch != nullptr) rows_per_batch->Record(batch.num_rows());
  };

  if (read.pushdown_executed) {
    CsvBatchReader reader(read.data, &pruned);
    RecordBatch batch;
    while (reader.Next(&batch)) {
      account(batch);
      result.batches.push_back(std::move(batch));
    }
    if (simd_bytes != nullptr && SimdEnabled()) {
      simd_bytes->Add(static_cast<int64_t>(reader.stats().scanned_bytes));
    }
    return result;
  }

  std::vector<int> indices;
  indices.reserve(required_columns.size());
  for (const std::string& name : required_columns) {
    indices.push_back(schema_.IndexOf(name));
  }
  CsvBatchReader reader(read.data, &schema_);
  RecordBatch batch;
  while (reader.Next(&batch)) {
    account(batch);
    result.batches.push_back(batch.SelectColumns(pruned, indices));
  }
  if (simd_bytes != nullptr && SimdEnabled()) {
    simd_bytes->Add(static_cast<int64_t>(reader.stats().scanned_bytes));
  }
  return result;
}

Result<std::vector<Row>> CsvDataSource::ScanPrunedFiltered(
    const std::vector<std::string>& required_columns,
    const SourceFilter& filter, bool* filter_applied) {
  SCOOP_ASSIGN_OR_RETURN(std::vector<Partition> partitions, Partitions());
  std::vector<Row> rows;
  bool all_filtered = true;
  for (const Partition& partition : partitions) {
    SCOOP_ASSIGN_OR_RETURN(
        PartitionScanResult scan,
        ScanPartition(partition, required_columns, filter));
    all_filtered = all_filtered && scan.filter_applied;
    scan.MaterializeRows();
    for (Row& row : scan.rows) rows.push_back(std::move(row));
  }
  if (filter_applied != nullptr) {
    *filter_applied = all_filtered && !partitions.empty();
  }
  return rows;
}

Result<std::vector<Row>> CsvDataSource::ScanPruned(
    const std::vector<std::string>& required_columns) {
  bool applied = false;
  return ScanPrunedFiltered(required_columns, SourceFilter::True(), &applied);
}

Result<std::vector<Row>> CsvDataSource::Scan() {
  std::vector<std::string> all;
  for (const Column& column : schema_.columns()) all.push_back(column.name);
  return ScanPruned(all);
}

}  // namespace scoop
