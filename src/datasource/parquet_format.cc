#include "datasource/parquet_format.h"

#include <cstring>
#include <map>

#include "common/strings.h"
#include "common/lz.h"

namespace scoop {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'Q', '1'};
constexpr uint16_t kNullIndex = 0xffff;

// SCOOP_RETURN_IF_ERROR for Status expressions inside Result-returning
// methods (the common macro works too; this alias documents the intent).
#define SCOOP_RETURN_IF_ERROR_V(expr)  \
  do {                                 \
    ::scoop::Status _s = (expr);       \
    if (!_s.ok()) return _s;           \
  } while (false)

enum Encoding : uint8_t { kPlain = 0, kDict = 1 };

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    SCOOP_RETURN_IF_ERROR_V(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint16_t> U16() {
    SCOOP_RETURN_IF_ERROR_V(Need(2));
    uint16_t v = static_cast<uint8_t>(data_[pos_]) |
                 (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1]))
                  << 8);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> U32() {
    SCOOP_RETURN_IF_ERROR_V(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    SCOOP_RETURN_IF_ERROR_V(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<std::string> String() {
    SCOOP_ASSIGN_OR_RETURN(uint32_t len, U32());
    SCOOP_RETURN_IF_ERROR_V(Need(len));
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  Result<std::string_view> Bytes(size_t n) {
    SCOOP_RETURN_IF_ERROR_V(Need(n));
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }
  Status Skip(size_t n) { return Need(n).ok() ? (pos_ += n, Status::OK())
                                              : Status::InvalidArgument(
                                                    "truncated parquet data"); }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  Status Need(size_t n) const {
    if (pos_ + n > data_.size()) {
      return Status::InvalidArgument("truncated parquet data");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// Encodes a column's values with the plain encoding.
std::string EncodePlain(const std::vector<Row>& rows, size_t col,
                        ColumnType type) {
  std::string out;
  for (const Row& row : rows) {
    const Value& v = row[col];
    if (v.is_null()) {
      PutU8(&out, 0);
      continue;
    }
    PutU8(&out, 1);
    switch (type) {
      case ColumnType::kInt64: {
        PutU64(&out, static_cast<uint64_t>(v.type() == ValueType::kInt64
                                               ? v.AsInt64()
                                               : static_cast<int64_t>(
                                                     v.ToDouble())));
        break;
      }
      case ColumnType::kDouble: {
        double d = v.ToDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(&out, bits);
        break;
      }
      case ColumnType::kString:
        PutString(&out, v.ToString());
        break;
    }
  }
  return out;
}

Value DecodeOne(BinReader* reader, ColumnType type, Status* status) {
  auto flag = reader->U8();
  if (!flag.ok()) {
    *status = flag.status();
    return Value::Null();
  }
  if (*flag == 0) return Value::Null();
  switch (type) {
    case ColumnType::kInt64: {
      auto bits = reader->U64();
      if (!bits.ok()) {
        *status = bits.status();
        return Value::Null();
      }
      return Value(static_cast<int64_t>(*bits));
    }
    case ColumnType::kDouble: {
      auto bits = reader->U64();
      if (!bits.ok()) {
        *status = bits.status();
        return Value::Null();
      }
      double d;
      uint64_t b = *bits;
      std::memcpy(&d, &b, 8);
      return Value(d);
    }
    case ColumnType::kString: {
      auto s = reader->String();
      if (!s.ok()) {
        *status = s.status();
        return Value::Null();
      }
      return Value(std::move(*s));
    }
  }
  return Value::Null();
}

}  // namespace

Result<std::string> ParquetEncode(const Schema& schema,
                                  const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    if (row.size() != schema.size()) {
      return Status::InvalidArgument("row width does not match schema");
    }
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, static_cast<uint32_t>(schema.size()));
  PutU64(&out, rows.size());

  for (size_t col = 0; col < schema.size(); ++col) {
    const Column& column = schema.column(col);
    // Stats.
    ParquetColumnStats stats;
    for (const Row& row : rows) {
      const Value& v = row[col];
      if (v.is_null()) continue;
      std::string display = v.ToString();
      if (!stats.has_values) {
        stats.min = display;
        stats.max = display;
        stats.has_values = true;
      } else {
        Value current = Value::FromField(display, column.type);
        Value lo = Value::FromField(stats.min, column.type);
        Value hi = Value::FromField(stats.max, column.type);
        if (current.Compare(lo) < 0) stats.min = display;
        if (current.Compare(hi) > 0) stats.max = display;
      }
    }

    // Pick encoding: dictionary for low-cardinality string columns.
    uint8_t encoding = kPlain;
    std::string raw;
    if (column.type == ColumnType::kString && rows.size() >= 16) {
      std::map<std::string, uint16_t> dict;
      bool viable = true;
      for (const Row& row : rows) {
        if (row[col].is_null()) continue;
        std::string key = row[col].ToString();
        if (!dict.count(key)) {
          if (dict.size() >= 4096) {
            viable = false;
            break;
          }
          dict.emplace(std::move(key), 0);
        }
      }
      if (viable && dict.size() * 2 < rows.size()) {
        encoding = kDict;
        uint16_t next = 0;
        for (auto& [key, id] : dict) id = next++;
        PutU32(&raw, static_cast<uint32_t>(dict.size()));
        for (const auto& [key, id] : dict) PutString(&raw, key);
        for (const Row& row : rows) {
          if (row[col].is_null()) {
            PutU16(&raw, kNullIndex);
          } else {
            PutU16(&raw, dict.at(row[col].ToString()));
          }
        }
      }
    }
    if (encoding == kPlain) {
      raw = EncodePlain(rows, col, column.type);
    }
    std::string compressed = LzCompress(raw);

    PutString(&out, column.name);
    PutU8(&out, static_cast<uint8_t>(column.type));
    PutU8(&out, encoding);
    PutU8(&out, stats.has_values ? 1 : 0);
    PutString(&out, stats.min);
    PutString(&out, stats.max);
    PutU64(&out, raw.size());
    PutU64(&out, compressed.size());
    out.append(compressed);
  }
  return out;
}

namespace {

struct ColumnBlock {
  Column column;
  uint8_t encoding = kPlain;
  ParquetColumnStats stats;
  uint64_t raw_size = 0;
  std::string_view compressed;
};

Result<std::pair<ParquetInfo, std::vector<ColumnBlock>>> ParseBlocks(
    std::string_view data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("not a parquet-like object (bad magic)");
  }
  BinReader reader(data.substr(4));
  SCOOP_ASSIGN_OR_RETURN(uint32_t ncols, reader.U32());
  ParquetInfo info;
  SCOOP_ASSIGN_OR_RETURN(info.rows, reader.U64());
  std::vector<ColumnBlock> blocks;
  std::vector<Column> columns;
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnBlock block;
    SCOOP_ASSIGN_OR_RETURN(block.column.name, reader.String());
    SCOOP_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
    if (type > 2) return Status::InvalidArgument("bad column type");
    block.column.type = static_cast<ColumnType>(type);
    SCOOP_ASSIGN_OR_RETURN(block.encoding, reader.U8());
    SCOOP_ASSIGN_OR_RETURN(uint8_t has_values, reader.U8());
    block.stats.has_values = has_values != 0;
    SCOOP_ASSIGN_OR_RETURN(block.stats.min, reader.String());
    SCOOP_ASSIGN_OR_RETURN(block.stats.max, reader.String());
    SCOOP_ASSIGN_OR_RETURN(block.raw_size, reader.U64());
    SCOOP_ASSIGN_OR_RETURN(uint64_t compressed_size, reader.U64());
    SCOOP_ASSIGN_OR_RETURN(block.compressed, reader.Bytes(compressed_size));
    columns.push_back(block.column);
    info.stats.push_back(block.stats);
    blocks.push_back(std::move(block));
  }
  info.schema = Schema(std::move(columns));
  return std::make_pair(std::move(info), std::move(blocks));
}

Result<std::vector<Value>> DecodeColumn(const ColumnBlock& block,
                                        uint64_t rows) {
  SCOOP_ASSIGN_OR_RETURN(std::string raw, LzDecompress(block.compressed));
  if (raw.size() != block.raw_size) {
    return Status::InvalidArgument("column block size mismatch");
  }
  std::vector<Value> values;
  values.reserve(rows);
  BinReader reader(raw);
  if (block.encoding == kDict) {
    SCOOP_ASSIGN_OR_RETURN(uint32_t dict_size, reader.U32());
    std::vector<std::string> dict(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      SCOOP_ASSIGN_OR_RETURN(dict[i], reader.String());
    }
    for (uint64_t r = 0; r < rows; ++r) {
      SCOOP_ASSIGN_OR_RETURN(uint16_t index, reader.U16());
      if (index == kNullIndex) {
        values.push_back(Value::Null());
      } else if (index < dict_size) {
        values.push_back(Value(dict[index]));
      } else {
        return Status::InvalidArgument("dictionary index out of range");
      }
    }
  } else {
    for (uint64_t r = 0; r < rows; ++r) {
      Status status = Status::OK();
      values.push_back(DecodeOne(&reader, block.column.type, &status));
      SCOOP_RETURN_IF_ERROR(status);
    }
  }
  return values;
}

}  // namespace

Result<ParquetInfo> ParquetInspect(std::string_view data) {
  SCOOP_ASSIGN_OR_RETURN(auto parsed, ParseBlocks(data));
  return std::move(parsed.first);
}

Result<RecordBatch> ParquetDecodeBatch(
    std::string_view data, const std::vector<std::string>& required_columns) {
  SCOOP_ASSIGN_OR_RETURN(auto parsed, ParseBlocks(data));
  const ParquetInfo& info = parsed.first;
  const std::vector<ColumnBlock>& blocks = parsed.second;

  std::vector<const ColumnBlock*> selected;
  if (required_columns.empty()) {
    for (const ColumnBlock& block : blocks) selected.push_back(&block);
  } else {
    for (const std::string& name : required_columns) {
      int idx = info.schema.IndexOf(name);
      if (idx < 0) return Status::NotFound("no parquet column named " + name);
      selected.push_back(&blocks[static_cast<size_t>(idx)]);
    }
  }

  std::vector<Column> out_columns;
  out_columns.reserve(selected.size());
  for (const ColumnBlock* block : selected) out_columns.push_back(block->column);
  RecordBatch batch{Schema(std::move(out_columns))};

  for (size_t c = 0; c < selected.size(); ++c) {
    const ColumnBlock& block = *selected[c];
    if (block.encoding == kDict) {
      // Straight into a dictionary column vector: distinct values + codes.
      SCOOP_ASSIGN_OR_RETURN(std::string raw, LzDecompress(block.compressed));
      if (raw.size() != block.raw_size) {
        return Status::InvalidArgument("column block size mismatch");
      }
      BinReader reader(raw);
      SCOOP_ASSIGN_OR_RETURN(uint32_t dict_size, reader.U32());
      std::vector<std::string> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        SCOOP_ASSIGN_OR_RETURN(dict[i], reader.String());
      }
      std::vector<int32_t> codes;
      codes.reserve(info.rows);
      for (uint64_t r = 0; r < info.rows; ++r) {
        SCOOP_ASSIGN_OR_RETURN(uint16_t index, reader.U16());
        if (index == kNullIndex) {
          codes.push_back(-1);
        } else if (index < dict_size) {
          codes.push_back(static_cast<int32_t>(index));
        } else {
          return Status::InvalidArgument("dictionary index out of range");
        }
      }
      batch.SetColumn(c, ColumnVector::FromDictionary(dict, codes));
      continue;
    }
    SCOOP_ASSIGN_OR_RETURN(std::vector<Value> values,
                           DecodeColumn(block, info.rows));
    ColumnVector* col = batch.mutable_column(c);
    col->Reserve(static_cast<int64_t>(info.rows));
    for (const Value& v : values) col->AppendValue(v);
  }
  batch.set_num_rows(static_cast<int64_t>(info.rows));
  return batch;
}

Result<std::vector<Row>> ParquetDecode(
    std::string_view data, const std::vector<std::string>& required_columns) {
  SCOOP_ASSIGN_OR_RETURN(RecordBatch batch,
                         ParquetDecodeBatch(data, required_columns));
  return batch.ToRows();
}

bool ParquetCanSkip(const SourceFilter& filter, const Schema& schema,
                    const std::vector<ParquetColumnStats>& stats) {
  using Op = SourceFilter::Op;
  switch (filter.op) {
    case Op::kAnd:
      for (const SourceFilter& child : filter.children) {
        if (ParquetCanSkip(child, schema, stats)) return true;
      }
      return false;
    case Op::kOr:
      for (const SourceFilter& child : filter.children) {
        if (!ParquetCanSkip(child, schema, stats)) return false;
      }
      return !filter.children.empty();
    case Op::kTrue:
    case Op::kNot:
    case Op::kIsNull:
    case Op::kNe:
      return false;
    default:
      break;
  }
  int idx = schema.IndexOf(filter.column);
  if (idx < 0 || static_cast<size_t>(idx) >= stats.size()) return false;
  const ParquetColumnStats& s = stats[static_cast<size_t>(idx)];
  if (!s.has_values) return true;  // only nulls: no comparison can match
  ColumnType type = schema.column(static_cast<size_t>(idx)).type;

  if (filter.op == Op::kIsNotNull) return false;
  if (filter.op == Op::kLike) {
    size_t wildcard = filter.literal.find_first_of("%_");
    std::string prefix = filter.literal.substr(
        0, wildcard == std::string::npos ? filter.literal.size() : wildcard);
    if (prefix.empty()) return false;
    // No value with this prefix can exist when max < prefix or when even
    // min already sorts above every prefixed string.
    if (s.max < prefix) return true;
    if (s.min.substr(0, prefix.size()) > prefix) return true;
    return false;
  }

  Value lit = filter.literal_is_number
                  ? Value::FromField(filter.literal,
                                     type == ColumnType::kString
                                         ? ColumnType::kDouble
                                         : type)
                  : Value(filter.literal);
  Value lo = Value::FromField(s.min, type);
  Value hi = Value::FromField(s.max, type);
  switch (filter.op) {
    case Op::kEq:
      return lit.Compare(lo) < 0 || lit.Compare(hi) > 0;
    case Op::kLt:
      return lo.Compare(lit) >= 0;
    case Op::kLe:
      return lo.Compare(lit) > 0;
    case Op::kGt:
      return hi.Compare(lit) <= 0;
    case Op::kGe:
      return hi.Compare(lit) < 0;
    default:
      return false;
  }
}

}  // namespace scoop
