#ifndef SCOOP_DATASOURCE_CSV_SOURCE_H_
#define SCOOP_DATASOURCE_CSV_SOURCE_H_

#include <memory>
#include <string>

#include "datasource/datasource.h"
#include "datasource/stocator.h"

namespace scoop {

// Options of the Spark-CSV-like data source.
struct CsvSourceOptions {
  // Partition chunk size ("HDFS chunk size" of §V-B).
  uint64_t chunk_size = 4 * 1024 * 1024;
  // When true, GETs carry the CSVStorlet pushdown task; when false the
  // source reads raw ranges and everything is filtered compute-side (the
  // vanilla ingest-then-compute baseline).
  bool pushdown_enabled = true;
  // §VI-C: compress the filtered stream for transfer (needs pushdown).
  bool compress_transfer = false;
  // Aggregation pushdown (needs pushdown): GETs for eligible GROUP BY
  // queries run the GroupAggStorlet and ship back partial AggStates.
  bool agg_pushdown_enabled = true;
  // LIMIT pushdown (needs pushdown): eligible prefix queries cap the
  // store-side scan at the limit.
  bool limit_pushdown_enabled = true;
  // §VII object-aware partitioning instead of fixed chunk size.
  bool object_aware_partitioning = false;
  int target_parallelism = 8;
  uint64_t min_partition_bytes = 256 * 1024;
};

// The extended Spark-CSV data source: implements PrunedFilteredScan by
// delegating projections and selections to OpenStack Swift through
// Stocator (paper §V-A). Objects under container/prefix hold headerless
// CSV with `schema` columns.
class CsvDataSource : public PrunedFilteredScan,
                      public PrunedScan,
                      public TableScan,
                      public PartitionedRelation {
 public:
  CsvDataSource(Stocator* stocator, std::string container, std::string prefix,
                Schema schema, CsvSourceOptions options)
      : stocator_(stocator),
        container_(std::move(container)),
        prefix_(std::move(prefix)),
        schema_(std::move(schema)),
        options_(options) {}

  const Schema& schema() const override { return schema_; }
  const CsvSourceOptions& options() const { return options_; }

  Result<std::vector<Partition>> Partitions() override;

  Result<PartitionScanResult> ScanPartition(
      const Partition& partition,
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter) override;

  // Rich scan: honors ScanSpec::aggregate (partial aggregation at the
  // store, SAG1-decoded into agg_groups) and ScanSpec::limit; both
  // degrade to the row scan when pushdown declines or faults.
  Result<PartitionScanResult> ScanPartition(const Partition& partition,
                                            const ScanSpec& spec) override;

  Result<std::vector<Row>> Scan() override;
  Result<std::vector<Row>> ScanPruned(
      const std::vector<std::string>& required_columns) override;
  Result<std::vector<Row>> ScanPrunedFiltered(
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter, bool* filter_applied) override;

 private:
  Stocator* stocator_;
  std::string container_;
  std::string prefix_;
  Schema schema_;
  CsvSourceOptions options_;
};

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_CSV_SOURCE_H_
