#include "datasource/partitioner.h"

#include <algorithm>

namespace scoop {

namespace {

// Cuts the listed objects into partitions of at most `chunk_size` bytes.
std::vector<Partition> CutObjects(const std::vector<ObjectInfo>& objects,
                                  const std::string& container,
                                  uint64_t chunk_size) {
  std::vector<Partition> partitions;
  int index = 0;
  for (const ObjectInfo& object : objects) {
    if (object.size == 0) continue;
    for (uint64_t offset = 0; offset < object.size; offset += chunk_size) {
      Partition p;
      p.index = index++;
      p.container = container;
      p.object = object.name;
      p.first = offset;
      p.last = std::min(offset + chunk_size, object.size) - 1;
      p.object_size = object.size;
      partitions.push_back(std::move(p));
    }
  }
  return partitions;
}

}  // namespace

Result<std::vector<Partition>> DiscoverPartitions(SwiftClient* client,
                                                  const std::string& container,
                                                  const std::string& prefix,
                                                  uint64_t chunk_size) {
  if (chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client->ListObjects(container, prefix));
  return CutObjects(objects, container, chunk_size);
}

Result<std::vector<Partition>> DiscoverPartitionsObjectAware(
    SwiftClient* client, const std::string& container,
    const std::string& prefix, int target_parallelism,
    uint64_t min_partition_bytes) {
  if (target_parallelism < 1) {
    return Status::InvalidArgument("target_parallelism must be >= 1");
  }
  if (min_partition_bytes == 0) min_partition_bytes = 1;
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client->ListObjects(container, prefix));
  uint64_t total = 0;
  for (const ObjectInfo& object : objects) total += object.size;
  if (total == 0) return std::vector<Partition>();
  uint64_t chunk = std::max<uint64_t>(
      min_partition_bytes,
      (total + static_cast<uint64_t>(target_parallelism) - 1) /
          static_cast<uint64_t>(target_parallelism));
  return CutObjects(objects, container, chunk);
}

}  // namespace scoop
