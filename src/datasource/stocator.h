#ifndef SCOOP_DATASOURCE_STOCATOR_H_
#define SCOOP_DATASOURCE_STOCATOR_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "datasource/partitioner.h"
#include "objectstore/cluster.h"
#include "sql/agg_wire.h"
#include "sql/schema.h"
#include "sql/source_filter.h"
#include "storlets/storlet.h"

namespace scoop {

// A pushdown task as carried on an object request: the schema of the
// object plus the projection/selection Catalyst extracted (paper §IV-A's
// "piece of metadata attached to an object request").
struct PushdownTask {
  Schema schema;
  std::vector<std::string> projection;  // empty: keep all columns
  SourceFilter selection;               // True(): keep all rows
  // §VI-C extension: pipeline the CompressStorlet after the CSV filter so
  // the (already filtered) stream crosses the network compressed; the
  // connector decompresses transparently on receipt.
  bool compress_transfer = false;
  // Aggregation pushdown: when set, the GET runs the GroupAggStorlet in
  // partials mode instead of the CSVStorlet and the response body is one
  // SAG1 frame of per-group AggStates (sql/agg_wire.h). `projection` and
  // `compress_transfer` are ignored in this mode. The pointer must
  // outlive the read.
  const AggPushdownSpec* aggregate = nullptr;
  // LIMIT pushdown (row mode only): >= 0 caps the storlet output at this
  // many selection-surviving rows and stops the store-side scan early.
  int64_t limit = -1;
};

// The high-speed object-store connector (paper §V-A): reads partition
// byte ranges from Swift and — in Scoop's extension — injects the
// pushdown task into each GET so the CSVStorlet executes at the store.
// This is the analytics-delegator end of the protocol.
class Stocator {
 public:
  // `metrics` (optional) receives the "pushdown.fallbacks" counter — one
  // increment per read that degraded from storlet pushdown to a plain
  // client-side read — the "pushdown.partial_aggs" and
  // "pushdown.limit_short_circuits" counters for the aggregation/limit
  // extensions, plus the "stocator.read_us" (full partition drain, the
  // ingest latency the paper's figures measure) and
  // "pushdown.bytes_saved" histograms (see METRICS.md).
  explicit Stocator(SwiftClient* client, MetricRegistry* metrics = nullptr)
      : client_(client),
        metrics_(metrics),
        fallbacks_counter_(metrics != nullptr
                               ? metrics->GetCounter("pushdown.fallbacks")
                               : nullptr) {}

  struct ReadResult {
    std::string data;              // record-aligned CSV for the partition
    bool pushdown_executed = false;  // X-Storlet-Executed was present
    bool limit_hit = false;        // storlet stopped at the LIMIT cap
    uint64_t bytes_transferred = 0;  // body size over the inter-cluster link
    int requests = 1;              // GETs issued (alignment may add extras)
  };

  // ReadResult without the materialized data — what the streaming form
  // reports after the chunks have been delivered.
  struct ReadStats {
    bool pushdown_executed = false;
    bool limit_hit = false;
    uint64_t bytes_transferred = 0;
    int requests = 1;
  };

  // Reads `partition`. When `task` is provided the GET is tagged with the
  // CSVStorlet invocation; if the store declines (policy off) or the
  // storlet invocation *fails* — engine error, storlet crash mid-stream,
  // middleware fault — the connector degrades to a plain client-side read
  // (§IV graceful degradation) and the caller receives raw data with
  // pushdown_executed = false, to be filtered compute-side. Without
  // `task` the connector performs client-side Hadoop record alignment
  // itself (extra ranged GETs).
  Result<ReadResult> ReadPartition(const Partition& partition,
                                   const PushdownTask* task);

  // Streaming form of ReadPartition: delivers the partition's
  // record-aligned (or pushdown-filtered) data to `consume` chunk by
  // chunk as it arrives off the store, never materializing the whole
  // partition. Compressed transfers are the exception — the frame must be
  // buffered to decode. A non-OK status from `consume` aborts the read.
  //
  // `restart` (optional) enables mid-stream fallback: when a pushdown
  // stream fails after chunks were already delivered, restart() must
  // discard everything consumed so far; the read is then redone
  // client-side from scratch. Without `restart`, a mid-stream failure
  // after the first delivered chunk propagates as an error.
  Result<ReadStats> ReadPartitionInto(
      const Partition& partition, const PushdownTask* task,
      const std::function<Status(std::string_view)>& consume,
      const std::function<Status()>& restart = nullptr);

  // Uploads `data`, running the ETL storlet on the PUT path when
  // `etl_params` is provided (paper §V-A data cleansing at ingestion).
  Status PutObject(const std::string& container, const std::string& object,
                   std::string data, const StorletParams* etl_params);

  SwiftClient* client() { return client_; }
  // The registry this connector reports into (nullptr when metrics are
  // off); data sources built over the connector share it for their scan
  // metrics (csv.batches, csv.simd_bytes, scan.rows_per_batch).
  MetricRegistry* metrics() { return metrics_; }

 private:
  // ReadPartitionInto behind the "stocator.read_partition" root span;
  // `parent` is that span's context, stamped onto every GET so the whole
  // store-side tree (proxy -> object server -> storlet stages) hangs off
  // this partition read.
  Result<ReadStats> ReadPartitionIntoTraced(
      const Partition& partition, const PushdownTask* task,
      const std::function<Status(std::string_view)>& consume,
      const std::function<Status()>& restart, const TraceContext& parent);

  Result<ReadStats> ReadAlignedInto(
      const Partition& partition,
      const std::function<Status(std::string_view)>& consume,
      const TraceContext& parent);

  // The bottom rung of the ladder: counts the fallback, optionally
  // restarts the consumer, and redoes the read client-side.
  // `wasted_requests` is the number of GETs the failed pushdown attempt
  // already spent (kept in the stats for honest accounting).
  Result<ReadStats> Fallback(
      const Partition& partition,
      const std::function<Status(std::string_view)>& consume,
      const std::function<Status()>& restart, int wasted_requests,
      const TraceContext& parent);

  SwiftClient* client_;
  MetricRegistry* metrics_;
  Counter* fallbacks_counter_;
};

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_STOCATOR_H_
