#ifndef SCOOP_DATASOURCE_DATASOURCE_H_
#define SCOOP_DATASOURCE_DATASOURCE_H_

#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/result.h"
#include "datasource/partitioner.h"
#include "sql/schema.h"
#include "sql/source_filter.h"
#include "sql/value.h"

namespace scoop {

// The Data Sources API (paper §III-A / §V-A), mirrored from Spark SQL.
// A relation exposes its schema and one or more scan flavours; the engine
// picks the richest one the relation implements:
//
//   TableScan          — return everything.
//   PrunedScan         — return only the required columns.
//   PrunedFilteredScan — additionally receive the selection filters, and
//                        *may* evaluate them (sources are allowed to
//                        return unfiltered rows; the engine re-applies
//                        filters compute-side unless the scan reports
//                        them as handled).
//
// Partition-level access (PartitionedRelation) is what the distributed
// executor drives; the whole-relation Scan methods are convenience
// wrappers over it.

struct PartitionScanResult {
  // Typed rows in required-column order. Sources on the columnar plane
  // leave this empty and fill `batches` instead; a scan never populates
  // both for the same records.
  std::vector<Row> rows;
  // Typed RecordBatches in required-column order — the columnar plane's
  // native product.
  std::vector<RecordBatch> batches;
  // True when the source already applied the selection filter exactly.
  bool filter_applied = false;
  // Bytes that crossed the store->compute link for this partition.
  uint64_t bytes_transferred = 0;
  // Bytes of raw data the partition covers at rest.
  uint64_t raw_bytes = 0;
  // GET requests issued.
  int requests = 0;

  int64_t TotalRows() const {
    int64_t n = static_cast<int64_t>(rows.size());
    for (const RecordBatch& b : batches) n += b.num_rows();
    return n;
  }

  // Flattens `batches` into `rows` (appended) — the bridge for callers
  // still on the row-at-a-time API.
  void MaterializeRows() {
    Row row;
    for (const RecordBatch& b : batches) {
      for (int64_t i = 0; i < b.num_rows(); ++i) {
        b.ExtractRow(i, &row);
        rows.push_back(row);
      }
    }
    batches.clear();
  }
};

class BaseRelation {
 public:
  virtual ~BaseRelation() = default;
  virtual const Schema& schema() const = 0;
};

class TableScan : public virtual BaseRelation {
 public:
  // All rows, full schema.
  virtual Result<std::vector<Row>> Scan() = 0;
};

class PrunedScan : public virtual BaseRelation {
 public:
  // All rows, pruned to `required_columns` (in that order).
  virtual Result<std::vector<Row>> ScanPruned(
      const std::vector<std::string>& required_columns) = 0;
};

class PrunedFilteredScan : public virtual BaseRelation {
 public:
  // Pruned and (best-effort) filtered rows. `filter_applied` reports
  // whether `filter` was evaluated exactly by the source.
  virtual Result<std::vector<Row>> ScanPrunedFiltered(
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter, bool* filter_applied) = 0;
};

class PartitionedRelation : public virtual BaseRelation {
 public:
  // Partition discovery (runs before the query is known, §V-B).
  virtual Result<std::vector<Partition>> Partitions() = 0;

  // Scans one partition with projection+selection hints.
  virtual Result<PartitionScanResult> ScanPartition(
      const Partition& partition,
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter) = 0;
};

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_DATASOURCE_H_
