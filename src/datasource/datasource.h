#ifndef SCOOP_DATASOURCE_DATASOURCE_H_
#define SCOOP_DATASOURCE_DATASOURCE_H_

#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/result.h"
#include "datasource/partitioner.h"
#include "sql/agg_wire.h"
#include "sql/schema.h"
#include "sql/source_filter.h"
#include "sql/value.h"

namespace scoop {

// The Data Sources API (paper §III-A / §V-A), mirrored from Spark SQL.
// A relation exposes its schema and one or more scan flavours; the engine
// picks the richest one the relation implements:
//
//   TableScan          — return everything.
//   PrunedScan         — return only the required columns.
//   PrunedFilteredScan — additionally receive the selection filters, and
//                        *may* evaluate them (sources are allowed to
//                        return unfiltered rows; the engine re-applies
//                        filters compute-side unless the scan reports
//                        them as handled).
//
// Partition-level access (PartitionedRelation) is what the distributed
// executor drives; the whole-relation Scan methods are convenience
// wrappers over it.

// Everything the engine can push into one partition scan: the classic
// projection/selection hints plus the aggregation/limit extensions. A
// source is free to honor only the parts it understands — the result
// reports what actually happened (filter_applied, agg_applied,
// limit_applied) and the engine compensates compute-side.
struct ScanSpec {
  std::vector<std::string> required_columns;
  SourceFilter filter = SourceFilter::True();
  // When set, the source may fold the partition into per-group partial
  // AggStates (PartitionScanResult::agg_groups) instead of rows. The
  // pointer must outlive the scan; it is owned by the PhysicalPlan.
  const AggPushdownSpec* aggregate = nullptr;
  // >= 0: the driver needs only this many selection-surviving rows from
  // this partition; the source may stop scanning (and transferring) once
  // it has them. Only meaningful without `aggregate`.
  int64_t limit = -1;
};

struct PartitionScanResult {
  // Typed rows in required-column order. Sources on the columnar plane
  // leave this empty and fill `batches` instead; a scan never populates
  // both for the same records.
  std::vector<Row> rows;
  // Typed RecordBatches in required-column order — the columnar plane's
  // native product.
  std::vector<RecordBatch> batches;
  // True when the source already applied the selection filter exactly.
  bool filter_applied = false;
  // Aggregation pushdown: when `agg_applied` the partition arrived as
  // per-group partial AggStates — `rows`/`batches` stay empty and
  // `agg_rows` counts the selection-surviving rows folded into the
  // states (the scan's contribution to rows_seen/rows_passed).
  std::vector<AggPartialGroup> agg_groups;
  int64_t agg_rows = 0;
  bool agg_applied = false;
  // True when the store stopped this scan early at the LIMIT cap.
  bool limit_applied = false;
  // Bytes that crossed the store->compute link for this partition.
  uint64_t bytes_transferred = 0;
  // Bytes of raw data the partition covers at rest.
  uint64_t raw_bytes = 0;
  // GET requests issued.
  int requests = 0;

  int64_t TotalRows() const {
    int64_t n = static_cast<int64_t>(rows.size());
    for (const RecordBatch& b : batches) n += b.num_rows();
    return n;
  }

  // Flattens `batches` into `rows` (appended) — the bridge for callers
  // still on the row-at-a-time API.
  void MaterializeRows() {
    Row row;
    for (const RecordBatch& b : batches) {
      for (int64_t i = 0; i < b.num_rows(); ++i) {
        b.ExtractRow(i, &row);
        rows.push_back(row);
      }
    }
    batches.clear();
  }
};

class BaseRelation {
 public:
  virtual ~BaseRelation() = default;
  virtual const Schema& schema() const = 0;
};

class TableScan : public virtual BaseRelation {
 public:
  // All rows, full schema.
  virtual Result<std::vector<Row>> Scan() = 0;
};

class PrunedScan : public virtual BaseRelation {
 public:
  // All rows, pruned to `required_columns` (in that order).
  virtual Result<std::vector<Row>> ScanPruned(
      const std::vector<std::string>& required_columns) = 0;
};

class PrunedFilteredScan : public virtual BaseRelation {
 public:
  // Pruned and (best-effort) filtered rows. `filter_applied` reports
  // whether `filter` was evaluated exactly by the source.
  virtual Result<std::vector<Row>> ScanPrunedFiltered(
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter, bool* filter_applied) = 0;
};

class PartitionedRelation : public virtual BaseRelation {
 public:
  // Partition discovery (runs before the query is known, §V-B).
  virtual Result<std::vector<Partition>> Partitions() = 0;

  // Scans one partition with projection+selection hints.
  virtual Result<PartitionScanResult> ScanPartition(
      const Partition& partition,
      const std::vector<std::string>& required_columns,
      const SourceFilter& filter) = 0;

  // Rich scan: adds the aggregation/limit pushdown hints. The default
  // forwards to the projection+selection form (extensions ignored), so
  // existing sources keep working unchanged; sources that can push
  // aggregates or limits override this one.
  virtual Result<PartitionScanResult> ScanPartition(const Partition& partition,
                                                    const ScanSpec& spec) {
    return ScanPartition(partition, spec.required_columns, spec.filter);
  }
};

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_DATASOURCE_H_
