#ifndef SCOOP_DATASOURCE_PARQUET_FORMAT_H_
#define SCOOP_DATASOURCE_PARQUET_FORMAT_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/result.h"
#include "sql/schema.h"
#include "sql/source_filter.h"
#include "sql/value.h"

namespace scoop {

// A columnar, compressed, self-describing object format playing Apache
// Parquet's role in the Fig. 8 comparison. One object = one row group.
//
// Properties matching what the comparison depends on:
//  * columnar layout  -> readers decode only the projected columns;
//  * per-column LZ compression (+ dictionary encoding for low-cardinality
//    columns) -> smaller network transfers;
//  * per-column min/max statistics -> whole objects can be skipped when a
//    predicate provably cannot match.
//
// Layout: magic "SPQ1", u32 column count, u64 row count, then per column a
// header (name, type, encoding, sizes, min/max stats) followed by the
// compressed data block. Readers skip unprojected blocks by size.

struct ParquetColumnStats {
  // Display-form min/max of non-null values; empty when all null.
  std::string min;
  std::string max;
  bool has_values = false;
};

// Encodes `rows` (typed per `schema`) into the columnar format.
Result<std::string> ParquetEncode(const Schema& schema,
                                  const std::vector<Row>& rows);

// Reads the schema and row count without decoding any data.
struct ParquetInfo {
  Schema schema;
  uint64_t rows = 0;
  std::vector<ParquetColumnStats> stats;
};
Result<ParquetInfo> ParquetInspect(std::string_view data);

// Decodes `required_columns` (empty = all) into one RecordBatch in that
// order. Dictionary-encoded string columns come off the wire as
// dictionary column vectors — codes and distinct values, never the
// repeated strings — so the batch evaluator's per-distinct-value fast
// path applies directly.
Result<RecordBatch> ParquetDecodeBatch(
    std::string_view data, const std::vector<std::string>& required_columns);

// Row-at-a-time adapter over ParquetDecodeBatch (deprecated as an
// engine; kept for the remaining row-based callers).
Result<std::vector<Row>> ParquetDecode(
    std::string_view data, const std::vector<std::string>& required_columns);

// True when `filter` provably matches no row of an object with `stats`
// (conservative: false whenever unsure). Enables row-group skipping.
bool ParquetCanSkip(const SourceFilter& filter, const Schema& schema,
                    const std::vector<ParquetColumnStats>& stats);

}  // namespace scoop

#endif  // SCOOP_DATASOURCE_PARQUET_FORMAT_H_
