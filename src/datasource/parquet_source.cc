#include "datasource/parquet_source.h"

#include "datasource/parquet_format.h"

namespace scoop {

Result<std::vector<Partition>> ParquetDataSource::Partitions() {
  SCOOP_ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                         client_->ListObjects(container_, prefix_));
  std::vector<Partition> partitions;
  int index = 0;
  for (const ObjectInfo& object : objects) {
    if (object.size == 0) continue;
    Partition p;
    p.index = index++;
    p.container = container_;
    p.object = object.name;
    p.first = 0;
    p.last = object.size - 1;
    p.object_size = object.size;
    partitions.push_back(std::move(p));
  }
  return partitions;
}

Result<PartitionScanResult> ParquetDataSource::ScanPartition(
    const Partition& partition,
    const std::vector<std::string>& required_columns,
    const SourceFilter& filter) {
  PartitionScanResult result;
  result.raw_bytes = partition.length();
  result.filter_applied = false;  // row filters always re-run compute-side

  SCOOP_ASSIGN_OR_RETURN(std::string data,
                         client_->GetObject(partition.container,
                                            partition.object));
  result.bytes_transferred = data.size();
  result.requests = 1;

  if (stats_skipping_ && !filter.IsTrue()) {
    SCOOP_ASSIGN_OR_RETURN(ParquetInfo info, ParquetInspect(data));
    if (ParquetCanSkip(filter, info.schema, info.stats)) {
      return result;  // provably empty: decode nothing
    }
  }
  SCOOP_ASSIGN_OR_RETURN(RecordBatch batch,
                         ParquetDecodeBatch(data, required_columns));
  result.batches.push_back(std::move(batch));
  return result;
}

Result<std::vector<Row>> ParquetDataSource::ScanPruned(
    const std::vector<std::string>& required_columns) {
  SCOOP_ASSIGN_OR_RETURN(std::vector<Partition> partitions, Partitions());
  std::vector<Row> rows;
  for (const Partition& partition : partitions) {
    SCOOP_ASSIGN_OR_RETURN(
        PartitionScanResult scan,
        ScanPartition(partition, required_columns, SourceFilter::True()));
    scan.MaterializeRows();
    for (Row& row : scan.rows) rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> ParquetDataSource::Scan() {
  std::vector<std::string> all;
  for (const Column& column : schema_.columns()) all.push_back(column.name);
  return ScanPruned(all);
}

Status WriteParquetObject(SwiftClient* client, const std::string& container,
                          const std::string& object, const Schema& schema,
                          const std::vector<Row>& rows) {
  SCOOP_ASSIGN_OR_RETURN(std::string data, ParquetEncode(schema, rows));
  return client->PutObject(container, object, std::move(data));
}

}  // namespace scoop
