#include "datasource/stocator.h"

#include "common/strings.h"
#include "csv/agg_storlet.h"
#include "csv/csv_storlet.h"
#include "objectstore/object_server.h"
#include "storlets/compress_storlet.h"
#include "storlets/headers.h"

namespace scoop {

namespace {
constexpr uint64_t kAlignmentChunk = 64 * 1024;

Request RangedGet(const std::string& account, const std::string& container,
                  const std::string& object, uint64_t first, uint64_t last) {
  Request request = Request::Get("/" + account + "/" + container + "/" +
                                 object);
  request.headers.Set(kRangeHeader,
                      StrFormat("bytes=%llu-%llu",
                                static_cast<unsigned long long>(first),
                                static_cast<unsigned long long>(last)));
  return request;
}
}  // namespace

Result<Stocator::ReadResult> Stocator::ReadPartition(
    const Partition& partition, const PushdownTask* task) {
  ReadResult result;
  SCOOP_ASSIGN_OR_RETURN(
      ReadStats stats,
      ReadPartitionInto(
          partition, task,
          [&](std::string_view chunk) {
            result.data.append(chunk);
            return Status::OK();
          },
          // Buffered reads can always restart: drop the partial data.
          [&] {
            result.data.clear();
            return Status::OK();
          }));
  result.pushdown_executed = stats.pushdown_executed;
  result.limit_hit = stats.limit_hit;
  result.bytes_transferred = stats.bytes_transferred;
  result.requests = stats.requests;
  return result;
}

Result<Stocator::ReadStats> Stocator::Fallback(
    const Partition& partition,
    const std::function<Status(std::string_view)>& consume,
    const std::function<Status()>& restart, int wasted_requests,
    const TraceContext& parent) {
  if (restart) SCOOP_RETURN_IF_ERROR(restart());
  if (fallbacks_counter_ != nullptr) fallbacks_counter_->Increment();
  SCOOP_ASSIGN_OR_RETURN(ReadStats stats,
                         ReadAlignedInto(partition, consume, parent));
  stats.requests += wasted_requests;
  return stats;
}

Result<Stocator::ReadStats> Stocator::ReadPartitionInto(
    const Partition& partition, const PushdownTask* task,
    const std::function<Status(std::string_view)>& consume,
    const std::function<Status()>& restart) {
  // The client edge of the trace: no inbound context, so this span roots
  // the trace every store-side hop of this partition read attaches to.
  TraceSpan span("stocator.read_partition");
  if (span.active()) {
    span.SetTag("container", partition.container);
    span.SetTag("object", partition.object);
    span.SetTag("range", StrFormat("%llu-%llu",
                                   static_cast<unsigned long long>(
                                       partition.first),
                                   static_cast<unsigned long long>(
                                       partition.last)));
  }
  Stopwatch watch;
  Result<ReadStats> result =
      ReadPartitionIntoTraced(partition, task, consume, restart,
                              span.context());
  if (metrics_ != nullptr) {
    // Full-drain latency: request issue through last consumed chunk —
    // the per-partition ingest time of the paper's figures. Compare
    // proxy.get_us, which stops at the response head.
    metrics_->GetHistogram("stocator.read_us")
        ->Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
    if (result.ok() && result->pushdown_executed) {
      // Link bytes the pushdown avoided: partition window minus what
      // actually crossed. Negative (filter kept ~everything plus headers)
      // clamps to zero.
      int64_t window =
          static_cast<int64_t>(partition.last + 1 - partition.first);
      int64_t saved =
          window - static_cast<int64_t>(result->bytes_transferred);
      metrics_->GetHistogram("pushdown.bytes_saved")
          ->Record(saved > 0 ? saved : 0);
    }
  }
  if (span.active() && result.ok()) {
    span.SetTag("pushdown",
                result->pushdown_executed ? "executed" : "declined");
    span.SetTag("bytes_transferred",
                std::to_string(result->bytes_transferred));
  }
  return result;
}

Result<Stocator::ReadStats> Stocator::ReadPartitionIntoTraced(
    const Partition& partition, const PushdownTask* task,
    const std::function<Status(std::string_view)>& consume,
    const std::function<Status()>& restart, const TraceContext& parent) {
  if (task == nullptr) return ReadAlignedInto(partition, consume, parent);

  Headers headers;
  const bool agg = task->aggregate != nullptr;
  if (agg) {
    // Aggregation pushdown: the GroupAggStorlet folds the partition into
    // per-group partial AggStates and ships back one SAG1 frame instead
    // of filtered rows. Compression is pointless at that size; the input
    // decoder is pinned to text because stage 0 reads raw object bytes
    // (never an upstream SBT1 stream), so sniffing could only misfire.
    headers.Set(kRunStorletHeader, GroupAggStorlet::kName);
    headers.Set(std::string(kStorletParamPrefix) + "Output", "partials");
    headers.Set(std::string(kStorletParamPrefix) + "Input", "text");
    if (!task->aggregate->group_specs.empty()) {
      headers.Set(std::string(kStorletParamPrefix) + "Group",
                  task->aggregate->GroupParam());
    }
    headers.Set(std::string(kStorletParamPrefix) + "Aggs",
                task->aggregate->AggsParam());
  } else {
    headers.Set(kRunStorletHeader, task->compress_transfer
                                       ? std::string(CsvStorlet::kName) +
                                             ",compress"
                                       : CsvStorlet::kName);
    if (!task->projection.empty()) {
      headers.Set(std::string(kStorletParamPrefix) + "Projection",
                  Join(task->projection, ","));
    }
    if (task->limit >= 0) {
      headers.Set(std::string(kStorletParamPrefix) + "Limit",
                  std::to_string(task->limit));
    }
  }
  headers.Set(kStorletRangeRecordsHeader, "true");
  headers.Set(std::string(kStorletParamPrefix) + "Schema",
              task->schema.ToSpec());
  if (!task->selection.IsTrue()) {
    headers.Set(std::string(kStorletParamPrefix) + "Selection",
                task->selection.Serialize());
  }

  Request request = Request::Get("/" + client_->account() + "/" +
                                 partition.container + "/" + partition.object);
  bool whole_object =
      partition.first == 0 && partition.last + 1 >= partition.object_size;
  if (!whole_object) {
    headers.Set(kRangeHeader,
                StrFormat("bytes=%llu-%llu",
                          static_cast<unsigned long long>(partition.first),
                          static_cast<unsigned long long>(partition.last)));
  }
  for (const auto& [name, value] : headers) request.headers.Set(name, value);
  StampTraceContext(parent, &request.headers);

  HttpResponse response = client_->Send(std::move(request));
  if (response.status == 404) {
    return Status::NotFound("no object " + partition.object);
  }
  if (!response.ok()) {
    // The storlet invocation failed at the store (engine fault, storlet
    // crash before the first byte, middleware error). The object itself
    // may be perfectly healthy — degrade to a plain client-side read
    // rather than failing the task (§IV).
    return Fallback(partition, consume, /*restart=*/nullptr,
                    /*wasted_requests=*/1, parent);
  }
  if (!response.headers.Has(kStorletExecutedHeader)) {
    // The store declined (policy): what we would receive is the raw byte
    // range, not record-aligned. Redo the read the traditional way.
    return Fallback(partition, consume, /*restart=*/nullptr,
                    /*wasted_requests=*/0, parent);
  }

  ReadStats stats;
  stats.pushdown_executed = true;
  // Success accounting shared by the buffered and streaming arms: the
  // limit-hit trailer the storlet published at EOF, plus the pushdown
  // mode counters.
  auto finish = [&] {
    std::shared_ptr<const Headers> trailers = response.trailers();
    if (trailers != nullptr && trailers->Has("X-Object-Meta-Limit-Hit")) {
      stats.limit_hit = true;
      if (metrics_ != nullptr) {
        metrics_->GetCounter("pushdown.limit_short_circuits")->Increment();
      }
    }
    if (agg) {
      // Leaf marker span: this read's response was a SAG1 frame of
      // partial aggregate states. The GET itself was stamped with
      // `parent`, so the store-side tree still hangs off
      // stocator.read_partition — this span only records the mode.
      TraceSpan agg_span("pushdown.partial_agg", parent);
      if (agg_span.active()) {
        agg_span.SetTag("aggs", task->aggregate->AggsParam());
        agg_span.SetTag("bytes_transferred",
                        std::to_string(stats.bytes_transferred));
      }
      if (metrics_ != nullptr) {
        metrics_->GetCounter("pushdown.partial_aggs")->Increment();
      }
    }
  };

  if (!agg && task->compress_transfer) {
    // A compressed frame decodes as a unit; this path trades the memory
    // bound for link bytes by design.
    Result<std::string> frame = response.TakeBodyStream()->ReadAll();
    if (!frame.ok()) {
      // Stream died before anything was consumed: safe to degrade.
      return Fallback(partition, consume, /*restart=*/nullptr,
                      /*wasted_requests=*/1, parent);
    }
    stats.bytes_transferred = frame->size();
    SCOOP_ASSIGN_OR_RETURN(std::string decoded, DecodeCompressedFrame(*frame));
    SCOOP_RETURN_IF_ERROR(consume(decoded));
    finish();
    return stats;
  }
  // Filtered rows flow straight from the storlet pipeline to the caller,
  // one chunk at a time.
  bool consume_failed = false;
  Status drained = response.TakeBodyStream()->DrainTo(
      [&](std::string_view chunk) {
        stats.bytes_transferred += chunk.size();
        Status s = consume(chunk);
        if (!s.ok()) consume_failed = true;
        return s;
      });
  if (!drained.ok() && !consume_failed) {
    // The storlet pipeline died mid-stream (crash, dropped queue). Rows
    // already delivered are filtered output that cannot be stitched onto
    // a raw re-read — only a consumer that can restart from scratch may
    // degrade; otherwise the failure propagates.
    if (restart) {
      return Fallback(partition, consume, restart, /*wasted_requests=*/1,
                      parent);
    }
    return drained;
  }
  SCOOP_RETURN_IF_ERROR(drained);
  finish();
  return stats;
}

Result<Stocator::ReadStats> Stocator::ReadAlignedInto(
    const Partition& partition,
    const std::function<Status(std::string_view)>& consume,
    const TraceContext& parent) {
  TraceSpan span("stocator.read_aligned", parent);
  ReadStats stats;
  stats.requests = 0;
  stats.pushdown_executed = false;
  // Hadoop text-input contract, executed client-side: start at first-1
  // (when first > 0), discard through the first newline, then extend past
  // `last` until the final record completes. The main range streams
  // through chunk by chunk; only an alignment chunk is ever resident.
  uint64_t start = partition.first > 0 ? partition.first - 1 : 0;
  Request ranged = RangedGet(client_->account(), partition.container,
                             partition.object, start, partition.last);
  StampTraceContext(span.context(), &ranged.headers);
  HttpResponse response = client_->Send(std::move(ranged));
  if (response.status == 404) {
    return Status::NotFound("no object " + partition.object);
  }
  if (response.status == 416) return Status::OutOfRange(response.body());
  if (!response.ok()) {
    return Status::Internal("object GET -> " +
                            std::to_string(response.status) + " " +
                            response.body());
  }
  ++stats.requests;

  bool skipping = partition.first > 0;
  char last_char = '\0';
  std::shared_ptr<ByteStream> stream = response.TakeBodyStream();
  std::string buf(kAlignmentChunk, '\0');
  for (;;) {
    SCOOP_ASSIGN_OR_RETURN(size_t n, stream->Read(buf.data(), buf.size()));
    if (n == 0) break;
    stats.bytes_transferred += n;
    std::string_view chunk(buf.data(), n);
    last_char = chunk.back();
    if (skipping) {
      size_t nl = chunk.find('\n');
      if (nl == std::string_view::npos) continue;
      skipping = false;
      chunk.remove_prefix(nl + 1);
      if (chunk.empty()) continue;
    }
    SCOOP_RETURN_IF_ERROR(consume(chunk));
  }
  stream.reset();

  // Tail extension: complete the final record with bounded follow-up
  // reads. (The skip, if still pending, scans across these too — the
  // logical stream is range + extensions, as in the buffered form.)
  uint64_t cursor = partition.last + 1;
  while (last_char != '\n' && cursor < partition.object_size) {
    uint64_t chunk_last =
        std::min(cursor + kAlignmentChunk - 1, partition.object_size - 1);
    SCOOP_ASSIGN_OR_RETURN(
        std::string extension,
        client_->GetObjectRange(partition.container, partition.object, cursor,
                                chunk_last));
    ++stats.requests;
    stats.bytes_transferred += extension.size();
    cursor = chunk_last + 1;
    std::string_view piece = extension;
    size_t nl = piece.find('\n');
    if (nl != std::string_view::npos) {
      piece = piece.substr(0, nl + 1);
      last_char = '\n';
    }
    if (skipping) {
      size_t skip_nl = piece.find('\n');
      if (skip_nl == std::string_view::npos) continue;
      skipping = false;
      piece.remove_prefix(skip_nl + 1);
    }
    if (!piece.empty()) SCOOP_RETURN_IF_ERROR(consume(piece));
  }
  return stats;
}

Status Stocator::PutObject(const std::string& container,
                           const std::string& object, std::string data,
                           const StorletParams* etl_params) {
  Headers headers;
  if (etl_params != nullptr) {
    headers.Set(kRunStorletHeader, "etlstorlet");
    for (const auto& [key, value] : *etl_params) {
      headers.Set(std::string(kStorletParamPrefix) + key, value);
    }
  }
  return client_->PutObject(container, object, std::move(data), headers);
}

}  // namespace scoop
