#include "datasource/stocator.h"

#include "common/strings.h"
#include "objectstore/object_server.h"
#include "storlets/compress_storlet.h"
#include "storlets/headers.h"

namespace scoop {

namespace {
constexpr uint64_t kAlignmentChunk = 64 * 1024;
}  // namespace

Result<Stocator::ReadResult> Stocator::ReadPartition(
    const Partition& partition, const PushdownTask* task) {
  if (task == nullptr) return ReadAligned(partition);

  Headers headers;
  headers.Set(kRunStorletHeader,
              task->compress_transfer ? "csvstorlet,compress" : "csvstorlet");
  headers.Set(kStorletRangeRecordsHeader, "true");
  headers.Set(std::string(kStorletParamPrefix) + "Schema",
              task->schema.ToSpec());
  if (!task->projection.empty()) {
    headers.Set(std::string(kStorletParamPrefix) + "Projection",
                Join(task->projection, ","));
  }
  if (!task->selection.IsTrue()) {
    headers.Set(std::string(kStorletParamPrefix) + "Selection",
                task->selection.Serialize());
  }

  Request request = Request::Get("/" + client_->account() + "/" +
                                 partition.container + "/" + partition.object);
  bool whole_object =
      partition.first == 0 && partition.last + 1 >= partition.object_size;
  if (!whole_object) {
    headers.Set(kRangeHeader,
                StrFormat("bytes=%llu-%llu",
                          static_cast<unsigned long long>(partition.first),
                          static_cast<unsigned long long>(partition.last)));
  }
  for (const auto& [name, value] : headers) request.headers.Set(name, value);

  HttpResponse response = client_->Send(std::move(request));
  if (response.status == 404) {
    return Status::NotFound("no object " + partition.object);
  }
  if (!response.ok()) {
    return Status::Internal("pushdown GET -> " +
                            std::to_string(response.status) + " " +
                            response.body);
  }
  ReadResult result;
  result.pushdown_executed =
      response.headers.Has(kStorletExecutedHeader);
  result.bytes_transferred = response.body.size();
  if (result.pushdown_executed) {
    if (task->compress_transfer) {
      SCOOP_ASSIGN_OR_RETURN(result.data,
                             DecodeCompressedFrame(response.body));
    } else {
      result.data = std::move(response.body);
    }
    return result;
  }
  // The store declined (policy): what we received is the raw byte range,
  // not record-aligned. Redo the read the traditional way.
  return ReadAligned(partition);
}

Result<Stocator::ReadResult> Stocator::ReadAligned(
    const Partition& partition) {
  ReadResult result;
  result.requests = 0;
  // Hadoop text-input contract, executed client-side: start at first-1
  // (when first > 0), discard through the first newline, then extend past
  // `last` until the final record completes.
  uint64_t start = partition.first > 0 ? partition.first - 1 : 0;
  SCOOP_ASSIGN_OR_RETURN(
      std::string body,
      client_->GetObjectRange(partition.container, partition.object, start,
                              partition.last));
  ++result.requests;
  result.bytes_transferred += body.size();

  uint64_t cursor = partition.last + 1;
  while ((body.empty() || body.back() != '\n') &&
         cursor < partition.object_size) {
    uint64_t chunk_last =
        std::min(cursor + kAlignmentChunk - 1, partition.object_size - 1);
    SCOOP_ASSIGN_OR_RETURN(
        std::string extension,
        client_->GetObjectRange(partition.container, partition.object, cursor,
                                chunk_last));
    ++result.requests;
    result.bytes_transferred += extension.size();
    size_t nl = extension.find('\n');
    if (nl != std::string::npos) {
      body.append(extension, 0, nl + 1);
      break;
    }
    body.append(extension);
    cursor = chunk_last + 1;
  }
  if (partition.first > 0) {
    size_t nl = body.find('\n');
    if (nl == std::string::npos) {
      body.clear();
    } else {
      body.erase(0, nl + 1);
    }
  }
  result.data = std::move(body);
  result.pushdown_executed = false;
  return result;
}

Status Stocator::PutObject(const std::string& container,
                           const std::string& object, std::string data,
                           const StorletParams* etl_params) {
  Headers headers;
  if (etl_params != nullptr) {
    headers.Set(kRunStorletHeader, "etlstorlet");
    for (const auto& [key, value] : *etl_params) {
      headers.Set(std::string(kStorletParamPrefix) + key, value);
    }
  }
  return client_->PutObject(container, object, std::move(data), headers);
}

}  // namespace scoop
